package wave

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"golts/internal/ckpt"
	"golts/internal/sem"
)

// checkpointKey is the canonical string of every configuration choice
// that determines the numerical trajectory. Two runs with equal keys
// produce bitwise-identical fields cycle for cycle, so a checkpoint from
// one can seed the other. Deliberately excluded: the kernel (bitwise
// equivalent by contract), the rank/worker split of a fixed
// decomposition width (the width pins the assembly order), the cycle
// count (a resumed run may be extended), and observation-only settings
// (sinks, probes, receivers' names).
func checkpointKey(set *settings, width int, specs []srcSpec, recs []*sem.Receiver) string {
	var b strings.Builder
	fmt.Fprintf(&b, "golts|mesh=%s|scale=%.17g|physics=%s|degree=%d|cfl=%.17g|lts=%t",
		set.mesh, set.scale, set.physics, set.degree, set.cfl, set.lts)
	fmt.Fprintf(&b, "|width=%d|partitioner=%s|seed=%d", width, set.partitioner, set.seed)
	fmt.Fprintf(&b, "|sponge=%.17g,%.17g,%v", set.sponge.Width, set.sponge.Strength, set.sponge.Faces)
	for _, sp := range specs {
		fmt.Fprintf(&b, "|src=%d:%.17g:%.17g", sp.dof, sp.f0, sp.t0)
	}
	for _, r := range recs {
		fmt.Fprintf(&b, "|rcv=%d", r.Dof)
	}
	return b.String()
}

func configSHA(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// captureState snapshots the live stepper state: directly from the local
// schemes, or — for the distributed backend — merged over the wire from
// every rank's owned footprint (a single rank's replicated copy is exact
// only at the nodes its own elements touch).
func (s *Simulation) captureState() (*ckpt.StepperState, error) {
	switch {
	case s.dist != nil:
		return s.dist.FetchState()
	case s.ltsS != nil:
		return s.ltsS.Save(), nil
	default:
		return s.gS.Save(), nil
	}
}

// restoreState installs a snapshot into the stepper (all ranks, for the
// distributed backend).
func (s *Simulation) restoreState(st *ckpt.StepperState) error {
	switch {
	case s.dist != nil:
		if err := s.dist.RestoreState(st); err != nil {
			return err
		}
		// The coordinator-side mirror only refreshes on Step; seed it so
		// Time() is correct immediately after Resume.
		if ds, ok := s.stepper.(*distStepper); ok {
			ds.t = st.T
		}
		return nil
	case s.ltsS != nil:
		return s.ltsS.Restore(st)
	default:
		return s.gS.Restore(st)
	}
}

// Checkpoint writes a restartable snapshot of the full simulation state
// to path: a versioned, CRC-protected container (internal/ckpt) holding
// the configuration key and the stepper state. The write is atomic —
// a crash mid-write leaves the previous checkpoint intact. It may be
// called at any cycle boundary, including before the first Run.
func (s *Simulation) Checkpoint(path string) error {
	if s.closed {
		return fmt.Errorf("wave: Checkpoint: %w", ErrClosed)
	}
	st, err := s.captureState()
	if err != nil {
		return fmt.Errorf("wave: checkpoint: %w", err)
	}
	f := ckpt.NewFile()
	if err := f.PutMeta(&ckpt.Meta{
		ConfigKey: s.ckptKey,
		ConfigSHA: configSHA(s.ckptKey),
		Scheme:    st.Scheme,
		Cycle:     int64(s.cycles),
		Time:      st.T,
	}); err != nil {
		return fmt.Errorf("wave: checkpoint: %w", err)
	}
	if err := f.PutState(st); err != nil {
		return fmt.Errorf("wave: checkpoint: %w", err)
	}
	if err := ckpt.WriteFile(path, f); err != nil {
		return fmt.Errorf("wave: checkpoint: %w", err)
	}
	s.ckptWrites++
	return nil
}

// Resume rebuilds a Simulation from the given options — which must
// describe the same run that wrote the checkpoint — and restores the
// checkpointed state into it, so the next Run continues the interrupted
// trajectory bitwise. A checkpoint written by a different
// result-determining configuration is rejected with an *OptionError
// wrapping ErrCheckpointMismatch. The configured cycle count
// (WithCycles) is interpreted as the run's total: Run(ctx, 0) on a
// resumed simulation steps only the cycles that remain.
func Resume(path string, opts ...Option) (*Simulation, error) {
	f, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wave: reading checkpoint: %w", err)
	}
	meta, err := f.Meta()
	if err != nil {
		return nil, fmt.Errorf("wave: reading checkpoint: %w", err)
	}
	st, err := f.State()
	if err != nil {
		return nil, fmt.Errorf("wave: reading checkpoint: %w", err)
	}
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	if meta.ConfigKey != s.ckptKey {
		s.Close()
		return nil, optErr("Resume", ErrCheckpointMismatch,
			"checkpoint %s was written by a different configuration", path)
	}
	if err := s.restoreState(st); err != nil {
		s.Close()
		return nil, fmt.Errorf("wave: restoring checkpoint: %w", err)
	}
	s.cycles = int(meta.Cycle)
	s.resumed = true
	return s, nil
}
