package wave_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/parallel"
	"golts/internal/partition"
	"golts/internal/sem"
	"golts/internal/simio"
	"golts/wave"
)

// legacyOperator abstracts the two physics choices for the transcribed
// driver, as in the pre-facade cmd/wavesim.
type legacyOperator interface {
	sem.Operator
	NodeCoords(n int32) (x, y, z float64)
}

// legacyRun is a line-for-line transcription of the pre-facade
// cmd/wavesim driver (PR 2 state): the golden reference the facade must
// reproduce bitwise for a fixed (workers, partitioner, seed).
func legacyRun(t *testing.T, cfg *simio.Config, workers int, method partition.Method, seed int64) *simio.SeismogramSet {
	t.Helper()
	gen, ok := mesh.Generators[cfg.Mesh]
	if !ok {
		t.Fatalf("unknown mesh %q", cfg.Mesh)
	}
	m := gen(cfg.Scale)
	lv := mesh.AssignLevels(m, cfg.CFL/float64(cfg.Degree*cfg.Degree), 0)

	var op legacyOperator
	switch cfg.Physics {
	case "acoustic":
		a, err := sem.NewAcoustic3D(m, cfg.Degree, false)
		if err != nil {
			t.Fatal(err)
		}
		op = a
	case "elastic":
		e, err := sem.NewElastic3D(m, cfg.Degree, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		op = e
	}
	nc := op.Comps()

	var step sem.Operator = op
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > 1 {
		part, err := partition.Assign(m, lv, workers, method, seed)
		if err != nil {
			t.Fatal(err)
		}
		pop, err := parallel.NewOperator(op, part, workers)
		if err != nil {
			t.Fatal(err)
		}
		defer pop.Close()
		step = pop
	}

	x0, x1, y0, y1, z0, z1 := m.Extent()
	if cfg.Source.F0 == 0 {
		dur := float64(cfg.Cycles) * lv.CoarseDt
		cfg.Source = simio.SourceSpec{
			X: (x0 + x1) / 2, Y: (y0 + y1) / 2, Z: z0 + (z1-z0)/4,
			Comp: min(cfg.Source.Comp, nc-1), F0: 8 / dur, T0: dur / 5,
		}
	}
	if len(cfg.Receivers) == 0 {
		cfg.Receivers = []simio.ReceiverSpec{{
			Name: "st0", X: (x0+x1)/2 + (x1-x0)/12, Y: (y0 + y1) / 2, Z: z0,
			Comp: min(cfg.Source.Comp, nc-1),
		}}
	}
	srcNode := legacyNearest(op, cfg.Source.X, cfg.Source.Y, cfg.Source.Z)
	src := sem.Source{
		Dof: int(srcNode)*nc + min(cfg.Source.Comp, nc-1),
		W:   sem.Ricker{F0: cfg.Source.F0, T0: cfg.Source.T0},
	}
	var recs []*sem.Receiver
	for _, r := range cfg.Receivers {
		n := legacyNearest(op, r.X, r.Y, r.Z)
		recs = append(recs, &sem.Receiver{Dof: int(n)*nc + min(r.Comp, nc-1)})
	}
	var sigma []float64
	if cfg.Sponge.Strength > 0 {
		sigma = sem.SpongeProfile(op.NumNodes(), op.NodeCoords,
			x0, x1, y0, y1, z0, z1, cfg.Sponge.Faces, cfg.Sponge.Width, cfg.Sponge.Strength)
	}

	if cfg.LTS {
		s, err := lts.FromMeshLevels(step, lv, true)
		if err != nil {
			t.Fatal(err)
		}
		s.SetSources([]sem.Source{src})
		s.Sigma = sigma
		for i := 0; i < cfg.Cycles; i++ {
			s.Step()
			for _, r := range recs {
				r.Record(s.Time(), s.U)
			}
		}
	} else {
		g := newmark.New(step, lv.CoarseDt/float64(lv.PMax()))
		g.Sources = []sem.Source{src}
		g.Sigma = sigma
		for i := 0; i < cfg.Cycles; i++ {
			g.Run(lv.PMax())
			for _, r := range recs {
				r.Record(g.Time(), g.U)
			}
		}
	}

	var set simio.SeismogramSet
	for i, r := range recs {
		spec := cfg.Receivers[i]
		if err := set.AddTrace(spec.Name, spec.X, spec.Y, spec.Z, r.Times, r.Values); err != nil {
			t.Fatal(err)
		}
	}
	return &set
}

func legacyNearest(op legacyOperator, x, y, z float64) int32 {
	best, bd := int32(0), math.Inf(1)
	for n := 0; n < op.NumNodes(); n++ {
		nx, ny, nz := op.NodeCoords(int32(n))
		d := (nx-x)*(nx-x) + (ny-y)*(ny-y) + (nz-z)*(nz-z)
		if d < bd {
			best, bd = int32(n), d
		}
	}
	return best
}

// goldenCase is one cell of the equivalence matrix.
type goldenCase struct {
	name    string
	cfg     simio.Config
	workers int
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "acoustic-lts-1w",
			cfg: simio.Config{
				Mesh: "trench", Scale: 0.0005, Physics: "acoustic",
				Degree: 4, CFL: 0.4, LTS: true, Cycles: 3,
				// Receiver next to the source so the short run records a
				// nonzero signal.
				Source:    simio.SourceSpec{X: 0.5, Y: 0.5, Z: 0.5, F0: 10, T0: 0.05},
				Receivers: []simio.ReceiverSpec{{Name: "near", X: 0.5, Y: 0.5, Z: 0.5}},
			},
			workers: 1,
		},
		{
			name: "acoustic-global-4w",
			cfg: simio.Config{
				Mesh: "trench", Scale: 0.0005, Physics: "acoustic",
				Degree: 4, CFL: 0.4, LTS: false, Cycles: 2,
			},
			workers: 4,
		},
		{
			name: "elastic-lts-4w",
			cfg: simio.Config{
				Mesh: "trench", Scale: 0.0005, Physics: "elastic",
				Degree: 3, CFL: 0.4, LTS: true, Cycles: 3,
				Source: simio.SourceSpec{X: 0.5, Y: 0.5, Z: 0.3, Comp: 2, F0: 12, T0: 0.08},
				Receivers: []simio.ReceiverSpec{
					{Name: "a", X: 0.4, Y: 0.5, Z: 0, Comp: 2},
					{Name: "b", X: 0.6, Y: 0.5, Z: 0, Comp: 0},
				},
				Sponge: simio.SpongeSpec{
					Width: 0.3, Strength: 30,
					Faces: [6]bool{true, true, true, true, false, true},
				},
			},
			workers: 4,
		},
		{
			name: "elastic-global-1w",
			cfg: simio.Config{
				Mesh: "trench", Scale: 0.0005, Physics: "elastic",
				Degree: 3, CFL: 0.4, LTS: false, Cycles: 2,
			},
			workers: 1,
		},
		{
			// A component-only source (F0 == 0): the default placement and
			// wavelet apply but the force and default receiver act on the
			// requested component, as in the legacy driver.
			name: "elastic-lts-default-source-comp",
			cfg: simio.Config{
				Mesh: "trench", Scale: 0.0005, Physics: "elastic",
				// 6 cycles so the default receiver (which follows the
				// source's z component) sees a nonzero front.
				Degree: 3, CFL: 0.4, LTS: true, Cycles: 6,
				Source: simio.SourceSpec{Comp: 2},
			},
			workers: 1,
		},
	}
}

// facadeOptions translates a golden case into wave options, mirroring
// what cmd/wavesim does.
func facadeOptions(c goldenCase) []wave.Option {
	cfg := c.cfg
	opts := []wave.Option{
		wave.WithMesh(cfg.Mesh, cfg.Scale),
		wave.WithPhysics(wave.Physics(cfg.Physics)),
		wave.WithDegree(cfg.Degree),
		wave.WithCFL(cfg.CFL),
		wave.WithCycles(cfg.Cycles),
		wave.WithWorkers(c.workers),
		wave.WithPartitioner(wave.ScotchP),
		wave.WithSeed(7),
	}
	if cfg.LTS {
		opts = append(opts, wave.WithLTS())
	} else {
		opts = append(opts, wave.WithGlobalNewmark())
	}
	if cfg.Source.F0 != 0 {
		opts = append(opts, wave.WithSource(wave.Source{
			X: cfg.Source.X, Y: cfg.Source.Y, Z: cfg.Source.Z,
			Comp: cfg.Source.Comp, F0: cfg.Source.F0, T0: cfg.Source.T0,
		}))
	} else if cfg.Source.Comp != 0 {
		opts = append(opts, wave.WithSourceComponent(cfg.Source.Comp))
	}
	for _, r := range cfg.Receivers {
		opts = append(opts, wave.WithReceiver(wave.Receiver{
			Name: r.Name, X: r.X, Y: r.Y, Z: r.Z, Comp: r.Comp,
		}))
	}
	if cfg.Sponge.Strength > 0 {
		opts = append(opts, wave.WithSponge(wave.Sponge{
			Width: cfg.Sponge.Width, Strength: cfg.Sponge.Strength, Faces: cfg.Sponge.Faces,
		}))
	}
	return opts
}

// TestGoldenEquivalence pins wave.Simulation seismograms bitwise to the
// pre-refactor cmd/wavesim path across acoustic/elastic, LTS/global and
// 1/4 workers, including the streamed CSV and batch JSON encodings.
func TestGoldenEquivalence(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfgCopy := c.cfg // legacyRun mutates the config (source defaulting)
			want := legacyRun(t, &cfgCopy, c.workers, partition.ScotchP, 7)

			var csvBuf, jsonBuf bytes.Buffer
			sim, err := wave.New(append(facadeOptions(c),
				wave.WithSink(wave.CSVSink(&csvBuf)),
				wave.WithSink(wave.JSONSink(&jsonBuf)),
			)...)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			if err := sim.Run(context.Background(), 0); err != nil {
				t.Fatal(err)
			}

			got := sim.Seismograms()
			if len(got.Times) != len(want.Times) {
				t.Fatalf("got %d samples, want %d", len(got.Times), len(want.Times))
			}
			for i := range want.Times {
				if got.Times[i] != want.Times[i] {
					t.Fatalf("time[%d] = %v, want %v (bitwise)", i, got.Times[i], want.Times[i])
				}
			}
			if len(got.Traces) != len(want.Traces) {
				t.Fatalf("got %d traces, want %d", len(got.Traces), len(want.Traces))
			}
			nonzero := false
			for ti := range want.Traces {
				w, g := want.Traces[ti], got.Traces[ti]
				if g.Name != w.Name || g.X != w.X || g.Y != w.Y || g.Z != w.Z {
					t.Fatalf("trace %d metadata mismatch: got %+v, want %+v", ti, g, w)
				}
				for i := range w.Values {
					if g.Values[i] != w.Values[i] {
						t.Fatalf("trace %q sample %d = %v, want %v (bitwise)",
							w.Name, i, g.Values[i], w.Values[i])
					}
					if w.Values[i] != 0 {
						nonzero = true
					}
				}
			}
			if !nonzero {
				t.Error("golden run recorded only zeros; the comparison is vacuous")
			}

			// The streamed CSV and accumulated JSON sinks must match the
			// legacy batch writers byte for byte.
			if err := sim.Close(); err != nil {
				t.Fatal(err)
			}
			var wantCSV, wantJSON bytes.Buffer
			if err := want.WriteCSV(&wantCSV); err != nil {
				t.Fatal(err)
			}
			if err := want.WriteJSON(&wantJSON); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(csvBuf.Bytes(), wantCSV.Bytes()) {
				t.Error("streamed CSV differs from legacy WriteCSV output")
			}
			if !bytes.Equal(jsonBuf.Bytes(), wantJSON.Bytes()) {
				t.Error("JSON sink output differs from legacy WriteJSON output")
			}
		})
	}
}
