package wave

import (
	"context"

	"golts/internal/lts"
	"golts/internal/newmark"
)

// Stepper is the unified time-stepping interface over the two schemes:
// one Step advances one coarse cycle Δt. The LTS scheme substeps its fine
// levels internally; the global Newmark adapter performs p_max fine
// steps. Time reports the simulation time after the last completed cycle
// and State exposes the live displacement field (read-only).
type Stepper interface {
	Step() error
	Time() float64
	State() []float64
}

// ctxStepper is the optional context-aware step a backend may provide.
// Run prefers it over Step so cancelling the run context can abort work
// that blocks inside a single cycle — the distributed coordinator uses it
// to kill and reap its rank processes promptly instead of waiting out the
// wire step timeout.
type ctxStepper interface {
	StepCtx(ctx context.Context) error
}

// ltsStepper adapts lts.Scheme: one facade cycle is one LTS cycle.
type ltsStepper struct{ s *lts.Scheme }

func (a ltsStepper) Step() error {
	a.s.Step()
	return nil
}
func (a ltsStepper) Time() float64    { return a.s.Time() }
func (a ltsStepper) State() []float64 { return a.s.U }

// newmarkStepper adapts newmark.Stepper: one facade cycle is pmax fine
// steps, so both schemes sample receivers on the same time axis.
type newmarkStepper struct {
	s    *newmark.Stepper
	pmax int
}

func (a newmarkStepper) Step() error {
	a.s.Run(a.pmax)
	return nil
}
func (a newmarkStepper) Time() float64    { return a.s.Time() }
func (a newmarkStepper) State() []float64 { return a.s.U }

var (
	_ Stepper = ltsStepper{}
	_ Stepper = newmarkStepper{}
)
