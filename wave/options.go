package wave

import (
	"errors"
	"fmt"
	"time"

	"golts/internal/mesh"
	"golts/internal/partition"
)

// Sentinel errors returned (wrapped in *OptionError where applicable) by
// the configuration surface. Match them with errors.Is.
var (
	// ErrUnknownMesh is returned for a mesh name with no registered
	// benchmark generator.
	ErrUnknownMesh = errors.New("unknown mesh")
	// ErrUnknownPhysics is returned for a physics other than Acoustic or
	// Elastic.
	ErrUnknownPhysics = errors.New("unknown physics")
	// ErrUnknownPartitioner is returned for an unrecognised partitioner
	// name.
	ErrUnknownPartitioner = errors.New("unknown partitioner")
	// ErrDegreeRange is returned for a SEM polynomial degree outside
	// [1, 12].
	ErrDegreeRange = errors.New("degree outside [1, 12]")
	// ErrScaleRange is returned for a non-positive mesh scale.
	ErrScaleRange = errors.New("scale must be positive")
	// ErrCFLRange is returned for a non-positive Courant number.
	ErrCFLRange = errors.New("CFL must be positive")
	// ErrCyclesRange is returned for a non-positive cycle count.
	ErrCyclesRange = errors.New("cycles must be positive")
	// ErrWorkersRange is returned for a negative worker count.
	ErrWorkersRange = errors.New("workers must be non-negative")
	// ErrComponentRange is returned when a source or receiver component is
	// negative, above 2, or beyond what the selected physics provides
	// (acoustic fields have a single component 0).
	ErrComponentRange = errors.New("component out of range")
	// ErrSourceSpec is returned for a malformed source (non-positive F0).
	ErrSourceSpec = errors.New("invalid source")
	// ErrSpongeSpec is returned for a malformed sponge layer.
	ErrSpongeSpec = errors.New("invalid sponge")
	// ErrPartsRange is returned for a partition request with fewer than one
	// part.
	ErrPartsRange = errors.New("parts must be >= 1")
	// ErrUnknownKernel is returned for a kernel other than Batched or
	// PerElement.
	ErrUnknownKernel = errors.New("unknown kernel")
	// ErrBackendSpec is returned for a nil or foreign Backend value.
	ErrBackendSpec = errors.New("invalid backend")
	// ErrRanksRange is returned for a Distributed backend with fewer than
	// one rank.
	ErrRanksRange = errors.New("ranks must be >= 1")
	// ErrBackendConflict is returned at build time for options that
	// cannot be combined with the selected backend (e.g. WithWorkers > 1
	// with Distributed).
	ErrBackendConflict = errors.New("option incompatible with backend")
	// ErrCheckpointSpec is returned for a malformed WithCheckpointEvery
	// request (empty path or non-positive interval).
	ErrCheckpointSpec = errors.New("invalid checkpoint spec")
	// ErrCheckpointMismatch is returned by Resume when the checkpoint
	// file was written by a run with a different result-determining
	// configuration (mesh, physics, decomposition width, sources, ...).
	ErrCheckpointMismatch = errors.New("checkpoint does not match configuration")
	// ErrTuneSpec is returned for a malformed WithAutoTune request
	// (non-positive budget).
	ErrTuneSpec = errors.New("invalid auto-tune spec")
	// ErrNilArgument is returned when an option receives a nil sink or
	// probe.
	ErrNilArgument = errors.New("nil argument")
	// ErrClosed is returned when a Simulation is used after Close.
	ErrClosed = errors.New("simulation is closed")
)

// OptionError reports which option rejected its argument; it unwraps to
// one of the sentinel errors above.
type OptionError struct {
	// Option is the name of the offending option, e.g. "WithDegree".
	Option string
	// Err is the underlying cause.
	Err error
}

func (e *OptionError) Error() string { return "wave: " + e.Option + ": " + e.Err.Error() }

// Unwrap returns the underlying cause.
func (e *OptionError) Unwrap() error { return e.Err }

func optErr(option string, sentinel error, format string, args ...any) error {
	return &OptionError{Option: option, Err: fmt.Errorf("%w: "+format, append([]any{sentinel}, args...)...)}
}

// Physics selects the wave equation.
type Physics string

// The two discretized physics.
const (
	// Acoustic is the scalar acoustic wave equation (1 component per node).
	Acoustic Physics = "acoustic"
	// Elastic is the isotropic elastic wave equation (3 components per
	// node).
	Elastic Physics = "elastic"
)

// Kernel names a stiffness-kernel execution strategy.
type Kernel string

// The two kernel strategies. Batched — the default — fuses each stable
// element set (the whole mesh for the global scheme, each LTS level's
// force elements, each rank's owned slice) into single
// gather→contract→scatter passes over a flat structure-of-arrays
// workspace; PerElement applies one element at a time. The two are
// bitwise-identical, so switching kernels never changes results — only
// speed.
const (
	Batched    Kernel = "batched"
	PerElement Kernel = "per-element"
)

// Partitioner names an element-partitioning strategy for the parallel
// engine (paper §III-B).
type Partitioner string

// The partitioning strategies. ScotchP — each p-level partitioned
// separately, then merged onto processors — is the paper's best performer
// and the default.
const (
	Scotch     Partitioner = "scotch"
	ScotchP    Partitioner = "scotch-p"
	Metis      Partitioner = "metis"
	Patoh      Partitioner = "patoh"
	ScotchPM   Partitioner = "scotch-pm"
	CoarseOnly Partitioner = "coarse-only"
)

// Partitioners lists the paper's four benchmarked strategies in
// presentation order.
var Partitioners = []Partitioner{Scotch, ScotchP, Metis, Patoh}

// partitionerMethods maps facade names onto internal methods; it also
// serves as the validation set.
var partitionerMethods = map[Partitioner]partition.Method{
	Scotch:     partition.Scotch,
	ScotchP:    partition.ScotchP,
	Metis:      partition.Metis,
	Patoh:      partition.Patoh,
	ScotchPM:   partition.ScotchPM,
	CoarseOnly: partition.CoarseOnly,
}

// Source is a collocated Ricker point force: the f(x_s, t) term of the
// wave equation applied to the GLL node nearest (X, Y, Z).
type Source struct {
	// X, Y, Z is the physical position; the source snaps to the nearest
	// GLL node.
	X, Y, Z float64
	// Comp is the force component (always 0 for acoustic; 0..2 for
	// elastic).
	Comp int
	// F0 is the Ricker dominant frequency (must be positive); T0 the time
	// shift.
	F0, T0 float64
}

// Receiver is a recording station: it samples one component of the field
// at the GLL node nearest (X, Y, Z) once per cycle.
type Receiver struct {
	// Name labels the trace in seismogram output; empty names are
	// auto-assigned ("st0", "st1", ...).
	Name string
	// X, Y, Z is the physical position; the receiver snaps to the nearest
	// GLL node.
	X, Y, Z float64
	// Comp is the recorded component (always 0 for acoustic; 0..2 for
	// elastic).
	Comp int
}

// Sponge configures the absorbing boundary layer; a zero value disables
// it.
type Sponge struct {
	// Width is the layer thickness; Strength the peak damping coefficient.
	Width, Strength float64
	// Faces selects absorbing faces in x0, x1, y0, y1, z0, z1 order; the
	// typical seismology setup absorbs everything except the free surface.
	Faces [6]bool
}

// settings is the resolved configuration a Simulation is built from.
type settings struct {
	mesh         string
	scale        float64
	physics      Physics
	degree       int
	cfl          float64
	lts          bool
	cycles       int
	workers      int
	partitioner  Partitioner
	kernel       Kernel
	backend      Backend
	seed         int64
	sources      []Source
	srcComp      int
	receivers    []Receiver
	sponge       Sponge
	sinks        []Sink
	probes       []Probe
	artifacts    *ArtifactCache
	ckptPath     string
	ckptEvery    int
	telemetry    bool
	autoTune     time.Duration
	degradedMode bool
	minRanks     int
}

// levelCFL is the normalised Courant number handed to mesh.AssignLevels:
// the configured CFL scaled for the GLL node spacing of the configured
// degree. Both backends must derive the level structure from this one
// expression — a drift between them would break the distributed ≡ local
// bitwise contract.
func (s *settings) levelCFL() float64 { return s.cfl / float64(s.degree*s.degree) }

func defaultSettings() *settings {
	return &settings{
		mesh:        "trench",
		scale:       0.02,
		physics:     Acoustic,
		degree:      4,
		cfl:         0.4,
		lts:         true,
		cycles:      20,
		workers:     1,
		partitioner: ScotchP,
		kernel:      Batched,
		backend:     Local,
		seed:        1,
	}
}

// Option configures a Simulation. Options validate their arguments
// eagerly: New returns the first option's error (an *OptionError wrapping
// a sentinel) instead of silently clamping values.
type Option func(*settings) error

// Validate applies the options to a default configuration and returns the
// first error, without generating a mesh, building operators, or spawning
// rank processes. It is the cheap upfront check for CLIs and services
// that want to reject impossible flags (ranks > parts, nonpositive
// cycles, an unknown physics) before committing to an expensive build.
// Cross-option and mesh-dependent checks (component vs. physics, parts
// vs. element count) still happen in New.
func Validate(opts ...Option) error {
	set := defaultSettings()
	for _, o := range opts {
		if err := o(set); err != nil {
			return err
		}
	}
	return nil
}

// WithMesh selects a benchmark mesh by name ("trench", "trench-big",
// "embedding", "crust") at the given scale factor.
func WithMesh(name string, scale float64) Option {
	return func(s *settings) error {
		if _, ok := mesh.Generators[name]; !ok {
			return optErr("WithMesh", ErrUnknownMesh, "%q", name)
		}
		if scale <= 0 {
			return optErr("WithMesh", ErrScaleRange, "got %g", scale)
		}
		s.mesh = name
		s.scale = scale
		return nil
	}
}

// WithPhysics selects the wave equation (Acoustic or Elastic).
func WithPhysics(p Physics) Option {
	return func(s *settings) error {
		if p != Acoustic && p != Elastic {
			return optErr("WithPhysics", ErrUnknownPhysics, "%q", p)
		}
		s.physics = p
		return nil
	}
}

// WithDegree sets the SEM polynomial degree (default 4, the paper's
// 125-node elements).
func WithDegree(d int) Option {
	return func(s *settings) error {
		if d < 1 || d > 12 {
			return optErr("WithDegree", ErrDegreeRange, "got %d", d)
		}
		s.degree = d
		return nil
	}
}

// WithCFL sets the Courant number used for the LTS level assignment and
// the stable step (default 0.4; normalised internally for the GLL
// spacing).
func WithCFL(c float64) Option {
	return func(s *settings) error {
		if c <= 0 {
			return optErr("WithCFL", ErrCFLRange, "got %g", c)
		}
		s.cfl = c
		return nil
	}
}

// WithLTS selects the multi-level LTS-Newmark scheme (the default): fine
// regions substep locally and the whole mesh synchronises every coarse
// Δt.
func WithLTS() Option {
	return func(s *settings) error {
		s.lts = true
		return nil
	}
}

// WithGlobalNewmark selects the global leap-frog reference scheme: the
// whole mesh steps at the finest level's rate. One facade cycle still
// spans one coarse Δt (p_max substeps), so receiver sampling cadence
// matches the LTS scheme exactly.
func WithGlobalNewmark() Option {
	return func(s *settings) error {
		s.lts = false
		return nil
	}
}

// WithCycles sets the default cycle count used by Run(ctx, 0) and by the
// default source's wavelet duration (default 20).
func WithCycles(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return optErr("WithCycles", ErrCyclesRange, "got %d", n)
		}
		s.cycles = n
		return nil
	}
}

// WithWorkers sets the number of persistent rank workers of the parallel
// engine: 1 (the default) runs sequentially, 0 means one worker per
// GOMAXPROCS slot. Results are bitwise reproducible for a fixed (workers,
// partitioner, seed), so the 0 default varies in the last floating-point
// digits across hosts with different core counts.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return optErr("WithWorkers", ErrWorkersRange, "got %d", n)
		}
		s.workers = n
		return nil
	}
}

// WithPartitioner selects the element-partitioning strategy used when
// WithWorkers enables the parallel engine (default ScotchP).
func WithPartitioner(p Partitioner) Option {
	return func(s *settings) error {
		if _, ok := partitionerMethods[p]; !ok {
			return optErr("WithPartitioner", ErrUnknownPartitioner, "%q", p)
		}
		s.partitioner = p
		return nil
	}
}

// WithKernel selects the stiffness-kernel execution strategy (default
// Batched). Results are bitwise-identical between the two kernels; the
// per-element path exists as the always-available reference and for
// A/B benchmarking.
func WithKernel(k Kernel) Option {
	return func(s *settings) error {
		if k != Batched && k != PerElement {
			return optErr("WithKernel", ErrUnknownKernel, "%q", k)
		}
		s.kernel = k
		return nil
	}
}

// WithSeed sets the partitioner seed (default 1).
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithSource adds a point source. Like WithReceiver, the option
// accumulates: each call appends one source, and every source is
// injected at its node's LTS level at that level's local substep times.
// Without any WithSource a default Ricker source is placed at the
// horizontal centre, a quarter of the depth above the bottom, with a
// duration matched to the configured cycle count. Components are
// validated against the physics when the simulation is built.
func WithSource(src Source) Option {
	return func(s *settings) error {
		if src.F0 <= 0 {
			return optErr("WithSource", ErrSourceSpec, "F0 must be positive, got %g", src.F0)
		}
		if src.Comp < 0 || src.Comp > 2 {
			return optErr("WithSource", ErrComponentRange, "source %d: got %d", len(s.sources), src.Comp)
		}
		s.sources = append(s.sources, src)
		return nil
	}
}

// WithSourceComponent sets the force component used by the *default*
// source placement without fixing its position or wavelet — e.g. a
// vertical default force for elastic runs. It has no effect when
// WithSource provides a full source. The component is validated against
// the physics when the simulation is built.
func WithSourceComponent(comp int) Option {
	return func(s *settings) error {
		if comp < 0 || comp > 2 {
			return optErr("WithSourceComponent", ErrComponentRange, "got %d", comp)
		}
		s.srcComp = comp
		return nil
	}
}

// WithReceiver adds a recording station. Without any receivers a default
// station is placed on the surface near the source. The component is
// validated against the physics when the simulation is built.
func WithReceiver(rcv Receiver) Option {
	return func(s *settings) error {
		if rcv.Comp < 0 || rcv.Comp > 2 {
			return optErr("WithReceiver", ErrComponentRange, "receiver %q: got %d", rcv.Name, rcv.Comp)
		}
		s.receivers = append(s.receivers, rcv)
		return nil
	}
}

// WithSponge enables the absorbing boundary layer.
func WithSponge(sp Sponge) Option {
	return func(s *settings) error {
		if sp.Strength < 0 {
			return optErr("WithSponge", ErrSpongeSpec, "negative strength %g", sp.Strength)
		}
		if sp.Strength > 0 && sp.Width <= 0 {
			return optErr("WithSponge", ErrSpongeSpec, "width must be positive, got %g", sp.Width)
		}
		s.sponge = sp
		return nil
	}
}

// WithCheckpointEvery makes Run write a restartable checkpoint of the
// full simulation state to path after every n-th completed cycle,
// atomically (write-to-temp + rename), overwriting the previous one.
// Sinks and probes observe a cycle before its checkpoint is written, so
// on resume the external record is always at least as advanced as the
// restored state. Resume the run with Resume(path, sameOptions...); the
// continuation is bitwise identical to the uninterrupted run.
func WithCheckpointEvery(path string, n int) Option {
	return func(s *settings) error {
		if path == "" {
			return optErr("WithCheckpointEvery", ErrCheckpointSpec, "empty path")
		}
		if n < 1 {
			return optErr("WithCheckpointEvery", ErrCheckpointSpec, "interval must be >= 1, got %d", n)
		}
		s.ckptPath = path
		s.ckptEvery = n
		return nil
	}
}

// WithDegradedMode keeps a distributed run alive through permanent rank
// loss: a rank that exhausts its recovery budget is retired for good,
// its parts are redistributed onto the surviving ranks, and the run
// continues with fewer ranks — down to minRanks (0 selects 1). The
// decomposition width never changes, so the degraded seismogram is
// bitwise identical to the fault-free one; only wall time suffers.
// Requires WithBackend(Distributed{...}) with recovery checkpoints
// enabled, which is checked when the simulation is built. The shrink
// count is reported as Stats.DegradedRanks.
func WithDegradedMode(minRanks int) Option {
	return func(s *settings) error {
		if minRanks < 0 {
			return optErr("WithDegradedMode", ErrRanksRange, "min ranks %d negative", minRanks)
		}
		s.degradedMode = true
		s.minRanks = minRanks
		return nil
	}
}

// WithSink attaches a streaming output sink (see CSVSink, JSONSink,
// FileSink). Sinks are opened on the first Run and flushed by Close.
func WithSink(sink Sink) Option {
	return func(s *settings) error {
		if sink == nil {
			return optErr("WithSink", ErrNilArgument, "nil sink")
		}
		s.sinks = append(s.sinks, sink)
		return nil
	}
}

// WithProbe attaches a probe invoked after every cycle of every Run, in
// addition to any probes passed to Run itself (progress callbacks,
// snapshot hooks — see SnapshotEvery).
func WithProbe(p Probe) Option {
	return func(s *settings) error {
		if p == nil {
			return optErr("WithProbe", ErrNilArgument, "nil probe")
		}
		s.probes = append(s.probes, p)
		return nil
	}
}
