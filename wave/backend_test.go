package wave_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"testing"

	"golts/wave"
)

// TestMain is the distributed backend's cooperative re-exec hook: when a
// test spawns rank processes, the children re-run this binary and
// RankMain routes them into the rank runtime instead of the test suite.
func TestMain(m *testing.M) {
	wave.RankMain()
	os.Exit(m.Run())
}

// TestWithBackendValidation: every rejection path of WithBackend (and
// its build-time conflicts) yields a typed *OptionError wrapping the
// documented sentinel.
func TestWithBackendValidation(t *testing.T) {
	cases := []struct {
		name     string
		opts     []wave.Option
		sentinel error
	}{
		{"nil-backend", []wave.Option{wave.WithBackend(nil)}, wave.ErrBackendSpec},
		{"zero-ranks", []wave.Option{wave.WithBackend(wave.Distributed{})}, wave.ErrRanksRange},
		{"negative-ranks", []wave.Option{wave.WithBackend(wave.Distributed{Ranks: -2})}, wave.ErrRanksRange},
		{"parts-below-ranks", []wave.Option{wave.WithBackend(wave.Distributed{Ranks: 4, Parts: 2})}, wave.ErrPartsRange},
		{"negative-parts", []wave.Option{wave.WithBackend(wave.Distributed{Ranks: 2, Parts: -4})}, wave.ErrPartsRange},
		{"distributed-plus-workers", []wave.Option{
			wave.WithBackend(wave.Distributed{Ranks: 2}),
			wave.WithWorkers(4),
		}, wave.ErrBackendConflict},
		{"distributed-plus-auto-workers", []wave.Option{
			wave.WithBackend(wave.Distributed{Ranks: 2}),
			wave.WithWorkers(0),
		}, wave.ErrBackendConflict},
		{"workers-then-distributed", []wave.Option{
			wave.WithWorkers(2),
			wave.WithBackend(wave.Distributed{Ranks: 2}),
		}, wave.ErrBackendConflict},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sim, err := wave.New(tinyOpts(c.opts...)...)
			if err == nil {
				sim.Close()
				t.Fatalf("configuration accepted")
			}
			var oe *wave.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionError", err)
			}
			if oe.Option != "WithBackend" {
				t.Errorf("Option = %q, want WithBackend", oe.Option)
			}
			if !errors.Is(err, c.sentinel) {
				t.Errorf("error %v does not wrap %v", err, c.sentinel)
			}
		})
	}
}

// TestWithBackendLocal: the explicit Local backend is the default
// configuration and composes with workers.
func TestWithBackendLocal(t *testing.T) {
	sim, err := wave.New(tinyOpts(wave.WithBackend(wave.Local), wave.WithWorkers(2))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	if got := sim.Stats().Backend; got != "local" {
		t.Errorf("Backend = %q, want local", got)
	}
}

// distOpts is the shared configuration of the facade-level equivalence
// tests: a tiny trench run with an explicit source and receivers so both
// backends resolve identical dofs.
func distOpts(physics wave.Physics, lts bool, extra ...wave.Option) []wave.Option {
	comp := 0
	if physics == wave.Elastic {
		comp = 1
	}
	opts := []wave.Option{
		wave.WithMesh("trench", 0.0005),
		wave.WithPhysics(physics),
		wave.WithCycles(3),
		wave.WithSource(wave.Source{X: 0.5, Y: 0.5, Z: 0.3, Comp: comp, F0: 10, T0: 0.05}),
		wave.WithReceiver(wave.Receiver{Name: "surf", X: 0.55, Y: 0.5, Z: 0, Comp: comp}),
		wave.WithReceiver(wave.Receiver{Name: "deep", X: 0.4, Y: 0.45, Z: 0.6, Comp: 0}),
	}
	if lts {
		opts = append(opts, wave.WithLTS())
	} else {
		opts = append(opts, wave.WithGlobalNewmark())
	}
	return append(opts, extra...)
}

// runToCSV builds, runs and closes a simulation, returning its
// seismograms and the raw bytes its CSV sink streamed.
func runToCSV(t *testing.T, opts ...wave.Option) (*wave.Seismograms, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sim, err := wave.New(append(opts, wave.WithSink(wave.CSVSink(&buf)))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sg := sim.Seismograms()
	if err := sim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return sg, buf.Bytes()
}

// TestDistributedMatchesSharedMemory is the facade half of the
// acceptance bar: a Distributed{Ranks: N} run produces bitwise-identical
// seismograms — and byte-identical streamed CSV — to the local backend
// with WithWorkers(N), for both physics and both schemes.
func TestDistributedMatchesSharedMemory(t *testing.T) {
	cases := []struct {
		name    string
		physics wave.Physics
		lts     bool
		ranks   int
	}{
		{"acoustic-lts-2", wave.Acoustic, true, 2},
		{"elastic-global-2", wave.Elastic, false, 2},
	}
	if !testing.Short() {
		cases = append(cases,
			struct {
				name    string
				physics wave.Physics
				lts     bool
				ranks   int
			}{"acoustic-global-4", wave.Acoustic, false, 4},
		)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, wantCSV := runToCSV(t, distOpts(c.physics, c.lts, wave.WithWorkers(c.ranks))...)
			got, gotCSV := runToCSV(t, distOpts(c.physics, c.lts,
				wave.WithBackend(wave.Distributed{Ranks: c.ranks}))...)
			if len(got.Traces) != len(want.Traces) {
				t.Fatalf("trace count %d != %d", len(got.Traces), len(want.Traces))
			}
			for i := range want.Times {
				if math.Float64bits(want.Times[i]) != math.Float64bits(got.Times[i]) {
					t.Fatalf("time %d: %v != %v", i, got.Times[i], want.Times[i])
				}
			}
			for ti, tr := range want.Traces {
				for i := range tr.Values {
					if math.Float64bits(tr.Values[i]) != math.Float64bits(got.Traces[ti].Values[i]) {
						t.Fatalf("trace %q sample %d: %v != %v",
							tr.Name, i, got.Traces[ti].Values[i], tr.Values[i])
					}
				}
			}
			if !bytes.Equal(wantCSV, gotCSV) {
				t.Fatalf("CSV streams differ:\nlocal:\n%s\ndistributed:\n%s", wantCSV, gotCSV)
			}
		})
	}
}

// TestDistributedStats: the facade surfaces the distributed backend's
// identity and real communication counters.
func TestDistributedStats(t *testing.T) {
	sim, err := wave.New(distOpts(wave.Acoustic, true,
		wave.WithBackend(wave.Distributed{Ranks: 2, Parts: 4}))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := sim.Stats()
	if st.Backend != "distributed" {
		t.Errorf("Backend = %q", st.Backend)
	}
	if st.Ranks != 2 || st.Parts != 4 {
		t.Errorf("Ranks, Parts = %d, %d; want 2, 4", st.Ranks, st.Parts)
	}
	if st.Cycles != 2 {
		t.Errorf("Cycles = %d, want 2", st.Cycles)
	}
	if st.ElemApplies == 0 {
		t.Error("ElemApplies = 0")
	}
	if st.Engine == nil || st.Engine.Messages == 0 {
		t.Errorf("Engine = %+v; want real halo messages", st.Engine)
	}
	if st.LTS && st.EffectiveSpeedup <= 0 {
		t.Errorf("EffectiveSpeedup = %v", st.EffectiveSpeedup)
	}
}

// TestDistributedHaloClosureRegression pins the halo-closure fix at the
// configuration that exposed it: a mid-size trench run with the default
// surface receiver, where the per-level touched-set halos (instead of
// the receiver's global element-node footprint) leaked ulp-level drift
// into the wavefront by cycle 10. Bitwise equality across rank counts
// at fixed decomposition is the contract that caught it.
func TestDistributedHaloClosureRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size mesh; covered by the full run")
	}
	opts := func(ranks int) []wave.Option {
		return []wave.Option{
			wave.WithMesh("trench", 0.01),
			wave.WithCycles(10),
			wave.WithBackend(wave.Distributed{Ranks: ranks, Parts: 4}),
		}
	}
	want, _ := runToCSV(t, opts(1)...)
	got, _ := runToCSV(t, opts(2)...)
	for ti, tr := range want.Traces {
		for i := range tr.Values {
			if math.Float64bits(tr.Values[i]) != math.Float64bits(got.Traces[ti].Values[i]) {
				t.Fatalf("trace %d sample %d: %v (%#x) != %v (%#x)", ti, i,
					got.Traces[ti].Values[i], math.Float64bits(got.Traces[ti].Values[i]),
					tr.Values[i], math.Float64bits(tr.Values[i]))
			}
		}
	}
}

// TestDistributedPartsPinBits: with the decomposition width fixed, the
// facade's distributed seismograms are independent of the rank count.
func TestDistributedPartsPinBits(t *testing.T) {
	want, wantCSV := runToCSV(t, distOpts(wave.Acoustic, true,
		wave.WithBackend(wave.Distributed{Ranks: 1, Parts: 3}))...)
	got, gotCSV := runToCSV(t, distOpts(wave.Acoustic, true,
		wave.WithBackend(wave.Distributed{Ranks: 3, Parts: 3}))...)
	for ti, tr := range want.Traces {
		for i := range tr.Values {
			if math.Float64bits(tr.Values[i]) != math.Float64bits(got.Traces[ti].Values[i]) {
				t.Fatalf("trace %d sample %d: %v != %v", ti, i, got.Traces[ti].Values[i], tr.Values[i])
			}
		}
	}
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Fatal("CSV streams differ across rank counts")
	}
}
