package wave

import (
	"fmt"

	"golts/internal/mesh"
	"golts/internal/partition"
)

// PartitionOptions configures a standalone partitioning run.
type PartitionOptions struct {
	// Parts is the number of parts (processors/ranks); must be >= 1.
	Parts int
	// Method selects the strategy; empty selects ScotchP, the paper's best
	// performer.
	Method Partitioner
	// Imbalance is the per-bisection balance tolerance ε (default 0.05).
	// For Patoh this plays the role of the paper's final_imbal parameter.
	Imbalance float64
	// Seed makes runs reproducible.
	Seed int64
	// Degree and CFL determine the LTS level assignment exactly as
	// WithDegree/WithCFL do for a Simulation (defaults 4 and 0.4), so a
	// partition lines up with the simulation it is built for. The level
	// assignment — and therefore the partition — is invariant to the CFL
	// value itself (per-element stable steps scale uniformly); only the
	// degree-normalised spacing enters the reported metrics.
	Degree int
	CFL    float64
}

// PartitionReport is an element-to-part assignment together with the
// quality metrics of the paper's Fig. 7 / Fig. 8 comparisons.
type PartitionReport struct {
	// Part assigns each element to a part; Parts is the part count and
	// Method the strategy that produced the assignment.
	Part   []int32
	Parts  int
	Method Partitioner
	// TotalImbalance is Eq. (21) applied to the per-part work Σ_e p_e, in
	// percent; PerLevelImbalance applies it to each level's element count
	// and MaxLevelImbalance is its worst entry.
	TotalImbalance    float64
	PerLevelImbalance []float64
	MaxLevelImbalance float64
	// GraphCut is the weighted dual-graph edge cut (the graph
	// partitioners' proxy objective); CommVolume the exact per-cycle
	// communication volume (hypergraph connectivity-1).
	GraphCut   int64
	CommVolume int64
	// Loads holds the per-part work Σ_e p_e.
	Loads []int64
}

// PartitionMesh partitions a benchmark mesh for LTS execution and reports
// the assignment with its quality metrics. The level assignment uses the
// same Degree/CFL normalisation as the Simulation facade, so the default
// options partition exactly the levels a default Simulation steps.
func PartitionMesh(meshName string, scale float64, opt PartitionOptions) (*PartitionReport, error) {
	gen, ok := mesh.Generators[meshName]
	if !ok {
		return nil, optErr("PartitionMesh", ErrUnknownMesh, "%q", meshName)
	}
	if scale <= 0 {
		return nil, optErr("PartitionMesh", ErrScaleRange, "got %g", scale)
	}
	if opt.Degree == 0 {
		opt.Degree = 4
	}
	if opt.Degree < 1 || opt.Degree > 12 {
		return nil, optErr("PartitionMesh", ErrDegreeRange, "got %d", opt.Degree)
	}
	if opt.CFL == 0 {
		opt.CFL = 0.4
	}
	if opt.CFL < 0 {
		return nil, optErr("PartitionMesh", ErrCFLRange, "got %g", opt.CFL)
	}
	if opt.Parts < 1 {
		return nil, optErr("PartitionMesh", ErrPartsRange, "got %d", opt.Parts)
	}
	method := opt.Method
	if method == "" {
		method = ScotchP
	}
	pm, ok := partitionerMethods[method]
	if !ok {
		return nil, optErr("PartitionMesh", ErrUnknownPartitioner, "%q", method)
	}
	m := gen(scale)
	lv := mesh.AssignLevels(m, opt.CFL/float64(opt.Degree*opt.Degree), 0)
	res, err := partition.PartitionMesh(m, lv, partition.Options{
		K: opt.Parts, Method: pm, Imbalance: opt.Imbalance, Seed: opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("wave: partitioning: %w", err)
	}
	mt := partition.Evaluate(m, lv, res.Part, opt.Parts)
	return &PartitionReport{
		Part:              res.Part,
		Parts:             opt.Parts,
		Method:            method,
		TotalImbalance:    mt.TotalImbalance,
		PerLevelImbalance: mt.PerLevelImbalance,
		MaxLevelImbalance: mt.MaxLevelImbalance,
		GraphCut:          mt.GraphCut,
		CommVolume:        mt.CommVolume,
		Loads:             mt.Loads,
	}, nil
}
