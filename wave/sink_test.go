package wave_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"golts/wave"
)

// failWriter fails every write after the first n bytes — the disk-full /
// short-write stand-in of the sink lifecycle regression tests.
type failWriter struct {
	n       int
	written int
	err     error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, w.err
	}
	w.written += len(p)
	return len(p), nil
}

// recordingCloser wraps a writer and records whether (and how often)
// Close was called, optionally failing it.
type recordingCloser struct {
	w        *failWriter
	closed   int
	closeErr error
}

func (c *recordingCloser) Write(p []byte) (int, error) { return c.w.Write(p) }
func (c *recordingCloser) Close() error                { c.closed++; return c.closeErr }

// sinkWithCloser builds a file-style CSV or JSON sink over the given
// closer through the FileSink machinery's inner constructors: CSVSink and
// JSONSink attach no closer, so the test reaches the lifecycle through a
// real file-free stand-in via the exported surface — a FileSink writing
// to a path is exercised separately.
func feedSink(t *testing.T, s wave.Sink, samples int) error {
	t.Helper()
	recs := []wave.Receiver{{Name: "st0"}, {Name: "st1"}}
	if err := s.Open(recs); err != nil {
		return err
	}
	for i := 0; i < samples; i++ {
		if err := s.Sample(float64(i), []float64{1.5, -2.25}); err != nil {
			return err
		}
	}
	return s.Flush()
}

// TestCSVSinkFlushSurfacesWriteError: a write failure at flush time (disk
// full) must surface from Flush, not be silently dropped — fatal for a
// server that reports job success off this error.
func TestCSVSinkFlushSurfacesWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	fw := &failWriter{n: 0, err: wantErr}
	err := feedSink(t, wave.CSVSink(fw), 3)
	if !errors.Is(err, wantErr) {
		t.Fatalf("Flush error = %v, want %v", err, wantErr)
	}
}

// TestFileSinkCSVWriteErrorStillCloses: when the CSV flush fails, the
// underlying file must still be closed (no fd leak), the write error must
// be reported, and a close error must be joined rather than masking it.
// Pre-fix, the early return on cw.Error() skipped Close entirely.
func TestFileSinkCSVWriteErrorStillCloses(t *testing.T) {
	writeErr := errors.New("short write")
	closeErr := errors.New("close failed")
	rc := &recordingCloser{w: &failWriter{n: 0, err: writeErr}, closeErr: closeErr}
	err := feedSink(t, wave.NewCSVCloserSinkForTest(rc), 3)
	if !errors.Is(err, writeErr) {
		t.Fatalf("Flush error %v does not wrap the write error", err)
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("Flush error %v does not join the close error", err)
	}
	if rc.closed != 1 {
		t.Fatalf("closer closed %d times, want exactly 1", rc.closed)
	}
}

// TestFileSinkJSONEncodeErrorStillCloses: a failing JSON encode must not
// leave the file open, and the encode error must not be masked by the
// close error (or vice versa).
func TestFileSinkJSONEncodeErrorStillCloses(t *testing.T) {
	writeErr := errors.New("disk full")
	closeErr := errors.New("close failed")
	rc := &recordingCloser{w: &failWriter{n: 0, err: writeErr}, closeErr: closeErr}
	err := feedSink(t, wave.NewJSONCloserSinkForTest(rc), 3)
	if !errors.Is(err, writeErr) {
		t.Fatalf("Flush error %v does not wrap the encode error", err)
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("Flush error %v does not join the close error", err)
	}
	if rc.closed != 1 {
		t.Fatalf("closer closed %d times, want exactly 1", rc.closed)
	}
}

// TestJSONSinkSuccessfulCloseErrorSurfaces: with a clean encode, a close
// failure must still surface.
func TestJSONSinkSuccessfulCloseErrorSurfaces(t *testing.T) {
	closeErr := errors.New("close failed")
	rc := &recordingCloser{w: &failWriter{n: 1 << 20, err: nil}, closeErr: closeErr}
	err := feedSink(t, wave.NewJSONCloserSinkForTest(rc), 3)
	if !errors.Is(err, closeErr) {
		t.Fatalf("Flush error = %v, want close error", err)
	}
}

// TestRowCSVSinkMatchesCSVSink: concatenating the rows delivered by
// RowCSVSink must reproduce the CSVSink byte stream exactly — the
// invariant the job server's streaming rows endpoint relies on for
// bitwise-identical cold and cache-hit runs.
func TestRowCSVSinkMatchesCSVSink(t *testing.T) {
	var rows bytes.Buffer
	rowSink := wave.RowCSVSink(func(row []byte) error {
		rows.Write(row)
		return nil
	})
	var whole bytes.Buffer
	csvSink := wave.CSVSink(&whole)

	for _, s := range []wave.Sink{rowSink, csvSink} {
		if err := feedSink(t, s, 4); err != nil {
			t.Fatalf("feed: %v", err)
		}
	}
	if rows.String() != whole.String() {
		t.Fatalf("row stream diverges from CSVSink:\nrows:  %q\nwhole: %q", rows.String(), whole.String())
	}
	if n := strings.Count(rows.String(), "\n"); n != 5 {
		t.Fatalf("expected 5 lines (header + 4 samples), got %d", n)
	}
}

// TestRowCSVSinkCallbackErrorAborts: a callback error must surface from
// Sample so Run aborts the cycle loop.
func TestRowCSVSinkCallbackErrorAborts(t *testing.T) {
	wantErr := errors.New("subscriber gone")
	n := 0
	s := wave.RowCSVSink(func([]byte) error {
		n++
		if n > 1 {
			return wantErr
		}
		return nil
	})
	err := feedSink(t, s, 3)
	if !errors.Is(err, wantErr) {
		t.Fatalf("Sample error = %v, want %v", err, wantErr)
	}
}
