// Package wave is the public facade of golts: one importable Simulation
// API over the spectral-element operators, the multi-level LTS-Newmark
// and global Newmark time steppers, and the shared-memory parallel
// execution engine.
//
// A Simulation is configured with functional options and validates
// eagerly, returning typed errors (*OptionError wrapping sentinel errors)
// instead of silently clamping values:
//
//	sim, err := wave.New(
//		wave.WithMesh("trench", 0.02),
//		wave.WithPhysics(wave.Elastic),
//		wave.WithWorkers(4),
//		wave.WithSink(wave.FileSink("seis.csv")),
//	)
//	if err != nil { ... }
//	defer sim.Close()
//	err = sim.Run(context.Background(), 40)
//
// One Run cycle always spans one coarse step Δt: the LTS scheme substeps
// its fine levels internally, and the global Newmark scheme performs
// p_max fine steps, so receivers sample both schemes on the same time
// axis. Results are bitwise reproducible for a fixed (workers,
// partitioner, seed) configuration.
package wave

import (
	"context"
	"errors"
	"fmt"
	"math"

	"golts/internal/dist"
	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/parallel"
	"golts/internal/partition"
	"golts/internal/sem"
	"golts/internal/tune"
)

// geomOperator is what the facade needs beyond sem.Operator: node
// coordinates for source/receiver placement and the sponge profile. Both
// 3-D operators provide it.
type geomOperator interface {
	sem.Operator
	NodeCoords(n int32) (x, y, z float64)
}

// Simulation is a configured wave-propagation run: mesh, discretization,
// time stepper, sources, receivers and output sinks. Build one with New,
// advance it with Run (or the Stepper directly), and release the parallel
// engine with Close.
//
// A Simulation is not safe for concurrent use; the parallelism of the
// worker engine is internal.
type Simulation struct {
	set  *settings
	m    *mesh.Mesh
	lv   *mesh.Levels
	geom geomOperator
	pop  *parallel.PartitionedOperator

	dist    *dist.Coordinator
	distCfg *dist.RunConfig

	ltsS    *lts.Scheme
	gS      *newmark.Stepper
	stepper Stepper

	sources   []Source
	receivers []Receiver
	recs      []*sem.Receiver
	samples   []float64

	workers   int
	cycles    int // completed cycles across Runs
	sinksOpen bool
	closed    bool

	// ckptKey is the canonical configuration string checkpoints are
	// stamped with (see checkpoint.go); resumed marks a Simulation built
	// by Resume, making Run(ctx, 0) step only the remaining cycles.
	ckptKey    string
	resumed    bool
	ckptWrites int64

	// artLookups and artHits record the build's artifact-cache traffic
	// (zero without WithArtifactCache).
	artLookups, artHits int64

	// tunePlan is the calibration outcome applied by WithAutoTune (nil
	// without it).
	tunePlan *tune.Plan
}

// New builds a Simulation from the given options. The zero configuration
// is a 20-cycle acoustic LTS run on the trench benchmark at scale 0.02,
// degree 4, CFL 0.4, sequential execution, with a default source and one
// default surface receiver.
func New(opts ...Option) (*Simulation, error) {
	set := defaultSettings()
	for _, o := range opts {
		if err := o(set); err != nil {
			return nil, err
		}
	}
	return build(set)
}

func build(set *settings) (*Simulation, error) {
	if _, ok := mesh.Generators[set.mesh]; !ok {
		return nil, optErr("WithMesh", ErrUnknownMesh, "%q", set.mesh)
	}
	var tunePlan *tune.Plan
	if set.autoTune > 0 {
		var err error
		if tunePlan, err = applyAutoTune(set); err != nil {
			return nil, err
		}
	}
	// ac accumulates this build's artifact-cache traffic: [lookups, hits].
	var ac [2]int64
	m, lv := getMesh(set, &ac)
	geom, err := getOperator(set, m, &ac)
	if err != nil {
		var oe *OptionError
		if errors.As(err, &oe) {
			return nil, err
		}
		return nil, fmt.Errorf("wave: %w", err)
	}
	nc := geom.Comps()

	// Cross-field validation: components against the physics. This is the
	// eager replacement for the old driver's silent min(comp, nc-1) clamp.
	for i, src := range set.sources {
		if src.Comp > nc-1 {
			return nil, optErr("WithSource", ErrComponentRange,
				"source %d component %d for %s physics (max %d)", i, src.Comp, set.physics, nc-1)
		}
	}
	if len(set.sources) == 0 && set.srcComp > nc-1 {
		return nil, optErr("WithSourceComponent", ErrComponentRange,
			"component %d for %s physics (max %d)", set.srcComp, set.physics, nc-1)
	}
	for _, r := range set.receivers {
		if r.Comp > nc-1 {
			return nil, optErr("WithReceiver", ErrComponentRange,
				"receiver %q component %d for %s physics (max %d)", r.Name, r.Comp, set.physics, nc-1)
		}
	}

	s := &Simulation{set: set, m: m, lv: lv, geom: geom, tunePlan: tunePlan}

	// Cross-backend validation: the distributed backend owns all the
	// parallelism, so shared-memory workers cannot be layered on top.
	distBE, distributed := set.backend.(Distributed)
	if distributed && set.workers != 1 {
		return nil, optErr("WithBackend", ErrBackendConflict,
			"distributed backend requires WithWorkers(1), got %d", set.workers)
	}
	if set.degradedMode {
		if !distributed {
			return nil, optErr("WithDegradedMode", ErrBackendConflict,
				"requires the distributed backend")
		}
		if distBE.CheckpointEvery < 0 {
			return nil, optErr("WithDegradedMode", ErrBackendConflict,
				"requires recovery checkpoints (Distributed.CheckpointEvery >= 0)")
		}
		if set.minRanks > distBE.Ranks {
			return nil, optErr("WithDegradedMode", ErrRanksRange,
				"min ranks %d above rank count %d", set.minRanks, distBE.Ranks)
		}
	}

	// Decomposition width against the mesh: a request for more parts than
	// elements cannot be satisfied (the recursive bisection has nothing
	// left to split and effectively hangs on large widths), so it is
	// rejected here — at build time — rather than deep inside the
	// partitioner. Only explicit requests fail; the auto-sized worker
	// count (WithWorkers(0)) clamps to the element count below, so tiny
	// meshes on big machines still build.
	nelem := m.NumElements()
	if distributed && distBE.parts() > nelem {
		return nil, optErr("WithBackend", ErrPartsRange,
			"parts %d exceeds the mesh's %d elements", distBE.parts(), nelem)
	}
	if !distributed && set.workers > nelem {
		return nil, optErr("WithWorkers", ErrWorkersRange,
			"workers %d exceeds the mesh's %d elements", set.workers, nelem)
	}

	// The operator the time stepper sees: the geometry operator itself, or
	// the parallel engine wrapped around it. The distributed backend never
	// steps in this process, so it skips both.
	var step sem.Operator = geom
	s.workers = set.workers
	if s.workers == 0 {
		s.workers = parallel.DefaultWorkers()
		if s.workers > nelem {
			s.workers = nelem
		}
	}
	if !distributed && s.workers > 1 {
		part, err := getPartition(set, m, lv, s.workers, &ac)
		if err != nil {
			return nil, fmt.Errorf("wave: partitioning: %w", err)
		}
		pop, err := parallel.NewOperator(geom, part, s.workers)
		if err != nil {
			return nil, fmt.Errorf("wave: parallel engine: %w", err)
		}
		pop.SetTelemetry(set.telemetry)
		s.pop = pop
		step = pop
	}

	// Defaults: source near the refinement, one receiver nearby.
	x0, x1, y0, y1, z0, z1 := m.Extent()
	if len(set.sources) > 0 {
		s.sources = append([]Source(nil), set.sources...)
	} else {
		dur := float64(set.cycles) * lv.CoarseDt
		s.sources = []Source{{
			X: (x0 + x1) / 2, Y: (y0 + y1) / 2, Z: z0 + (z1-z0)/4,
			Comp: set.srcComp, F0: 8 / dur, T0: dur / 5,
		}}
	}
	s.receivers = append([]Receiver(nil), set.receivers...)
	if len(s.receivers) == 0 {
		s.receivers = []Receiver{{
			Name: "st0", X: (x0+x1)/2 + (x1-x0)/12, Y: (y0 + y1) / 2, Z: z0,
			Comp: s.sources[0].Comp,
		}}
	}
	for i := range s.receivers {
		if s.receivers[i].Name == "" {
			s.receivers[i].Name = fmt.Sprintf("st%d", i)
		}
	}

	specs := make([]srcSpec, len(s.sources))
	semSrcs := make([]sem.Source, len(s.sources))
	for i, src := range s.sources {
		srcNode := nearestNode(geom, src.X, src.Y, src.Z)
		specs[i] = srcSpec{dof: int(srcNode)*nc + src.Comp, f0: src.F0, t0: src.T0}
		semSrcs[i] = sem.Source{
			Dof: specs[i].dof,
			W:   sem.Ricker{F0: src.F0, T0: src.T0},
		}
	}
	for _, r := range s.receivers {
		n := nearestNode(geom, r.X, r.Y, r.Z)
		s.recs = append(s.recs, &sem.Receiver{Dof: int(n)*nc + r.Comp})
	}
	s.samples = make([]float64, len(s.recs))

	width := s.workers
	if distributed {
		width = distBE.parts()
	}
	s.ckptKey = checkpointKey(set, width, specs, s.recs)

	if distributed {
		if err := buildDistributed(s, set, distBE, specs, &ac); err != nil {
			return nil, err
		}
		s.artLookups, s.artHits = ac[0], ac[1]
		return s, nil
	}

	var sigma []float64
	if set.sponge.Strength > 0 {
		sigma = sem.SpongeProfile(geom.NumNodes(), geom.NodeCoords,
			x0, x1, y0, y1, z0, z1, set.sponge.Faces, set.sponge.Width, set.sponge.Strength)
	}

	kern := sem.KernelBatched
	if set.kernel == PerElement {
		kern = sem.KernelPerElement
	}
	if set.lts {
		sch, err := lts.FromMeshLevels(step, lv, true)
		if err != nil {
			return nil, fmt.Errorf("wave: %w", err)
		}
		sch.Kernel = kern
		sch.Telemetry = set.telemetry
		sch.SetSources(semSrcs)
		sch.Sigma = sigma
		s.ltsS = sch
		s.stepper = ltsStepper{sch}
	} else {
		g := newmark.New(step, lv.CoarseDt/float64(lv.PMax()))
		g.Kernel = kern
		g.Sources = semSrcs
		g.Sigma = sigma
		s.gS = g
		s.stepper = newmarkStepper{g, lv.PMax()}
	}
	s.artLookups, s.artHits = ac[0], ac[1]
	return s, nil
}

// srcSpec is a resolved point source — global dof plus Ricker wavelet
// parameters — the common form the local steppers and the distributed
// RunConfig are both built from.
type srcSpec struct {
	dof    int
	f0, t0 float64
}

// partitionAssign maps the mesh onto k parts with the configured
// partitioner and seed; both backends decompose through it.
func partitionAssign(m *mesh.Mesh, lv *mesh.Levels, k int, set *settings) ([]int32, error) {
	return partition.Assign(m, lv, k, partitionerMethods[set.partitioner], set.seed)
}

// nearestNode does a brute-force nearest-node search; ties resolve to the
// lowest node id, matching the legacy driver.
func nearestNode(op geomOperator, x, y, z float64) int32 {
	best, bd := int32(0), math.Inf(1)
	for n := 0; n < op.NumNodes(); n++ {
		nx, ny, nz := op.NodeCoords(int32(n))
		d := (nx-x)*(nx-x) + (ny-y)*(ny-y) + (nz-z)*(nz-z)
		if d < bd {
			best, bd = int32(n), d
		}
	}
	return best
}

// Frame is the per-cycle observation passed to probes.
type Frame struct {
	// Cycle counts completed cycles across all Runs (1-based).
	Cycle int
	// Time is the simulation time t after the cycle.
	Time float64
	// State is the live displacement field (node-major, Comps per node).
	// Probes must treat it as read-only; copy what must outlive the call.
	State []float64
	// Samples holds the latest value of each receiver, in receiver order.
	// Valid only during the call.
	Samples []float64
}

// Probe observes the simulation after each cycle; returning an error
// aborts the Run.
type Probe func(Frame) error

// SnapshotEvery wraps a probe so it fires only every n-th cycle — the
// snapshot-hook helper for periodic field dumps or progress lines.
func SnapshotEvery(n int, fn Probe) Probe {
	if n < 1 {
		n = 1
	}
	return func(f Frame) error {
		if f.Cycle%n != 0 {
			return nil
		}
		return fn(f)
	}
}

// Run advances the simulation by the given number of coarse cycles,
// recording receivers, feeding sinks and invoking probes after every
// cycle. cycles == 0 runs the configured default (WithCycles). The
// context is checked between cycles; cancellation returns ctx.Err() with
// the state left at the last completed cycle. Run may be called again to
// continue the same simulation.
func (s *Simulation) Run(ctx context.Context, cycles int, probes ...Probe) error {
	if s.closed {
		return fmt.Errorf("wave: Run: %w", ErrClosed)
	}
	if cycles < 0 {
		return optErr("Run", ErrCyclesRange, "got %d", cycles)
	}
	if cycles == 0 {
		cycles = s.set.cycles
		if s.resumed {
			// The configured count is the run's total; a resumed simulation
			// only owes the remainder.
			cycles -= s.cycles
			if cycles < 0 {
				cycles = 0
			}
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.sinksOpen {
		for _, sk := range s.set.sinks {
			if err := sk.Open(s.receivers); err != nil {
				return fmt.Errorf("wave: opening sink: %w", err)
			}
		}
		s.sinksOpen = true
	}
	cs, _ := s.stepper.(ctxStepper)
	for i := 0; i < cycles; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		var err error
		if cs != nil {
			err = cs.StepCtx(ctx)
		} else {
			err = s.stepper.Step()
		}
		if err != nil {
			// Cancellation is reported bare, not wrapped as a cycle failure:
			// callers select on context.Canceled / DeadlineExceeded.
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return err
			}
			return fmt.Errorf("wave: cycle %d: %w", s.cycles+1, err)
		}
		s.cycles++
		t := s.stepper.Time()
		u := s.stepper.State()
		for j, r := range s.recs {
			r.Record(t, u)
			s.samples[j] = u[r.Dof]
		}
		for _, sk := range s.set.sinks {
			if err := sk.Sample(t, s.samples); err != nil {
				return fmt.Errorf("wave: sink: %w", err)
			}
		}
		if len(s.set.probes)+len(probes) > 0 {
			f := Frame{Cycle: s.cycles, Time: t, State: u, Samples: s.samples}
			for _, p := range s.set.probes {
				if err := p(f); err != nil {
					return fmt.Errorf("wave: probe: %w", err)
				}
			}
			for _, p := range probes {
				if err := p(f); err != nil {
					return fmt.Errorf("wave: probe: %w", err)
				}
			}
		}
		// Checkpoint after sinks and probes: on resume the external record
		// is at least as advanced as the restored state, never behind it.
		if s.set.ckptEvery > 0 && s.cycles%s.set.ckptEvery == 0 {
			if err := s.Checkpoint(s.set.ckptPath); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close flushes the attached sinks and shuts down the parallel engine.
// The Simulation must not be used afterwards; Close is idempotent.
func (s *Simulation) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.sinksOpen {
		for _, sk := range s.set.sinks {
			if err := sk.Flush(); err != nil && first == nil {
				first = fmt.Errorf("wave: flushing sink: %w", err)
			}
		}
	}
	if s.pop != nil {
		s.pop.Close()
	}
	if s.dist != nil {
		if err := s.dist.Close(); err != nil && first == nil {
			first = fmt.Errorf("wave: distributed backend: %w", err)
		}
	}
	return first
}

// Stepper returns the unified time stepper, for callers that drive the
// simulation cycle by cycle instead of through Run. Receivers, sinks and
// probes are serviced only by Run.
func (s *Simulation) Stepper() Stepper { return s.stepper }

// Time returns the simulation time after the last completed cycle.
func (s *Simulation) Time() float64 { return s.stepper.Time() }

// State returns the live displacement field (read-only). With the
// distributed backend the full field lives sharded across the rank
// processes, so only the receiver dofs carry live values here.
func (s *Simulation) State() []float64 { return s.stepper.State() }

// Cycles returns the configured default cycle count (WithCycles).
func (s *Simulation) Cycles() int { return s.set.cycles }

// Source returns the first resolved point source (after default
// placement) — the only one unless WithSource was used repeatedly.
func (s *Simulation) Source() Source { return s.sources[0] }

// Sources returns all resolved point sources, after default placement.
func (s *Simulation) Sources() []Source {
	return append([]Source(nil), s.sources...)
}

// Receivers returns the resolved recording stations, after default
// placement and name assignment.
func (s *Simulation) Receivers() []Receiver {
	return append([]Receiver(nil), s.receivers...)
}

// Seismograms returns a copy of everything the receivers have recorded so
// far.
func (s *Simulation) Seismograms() *Seismograms {
	out := &Seismograms{}
	if len(s.recs) > 0 {
		out.Times = append([]float64(nil), s.recs[0].Times...)
	}
	for i, r := range s.recs {
		sp := s.receivers[i]
		out.Traces = append(out.Traces, Trace{
			Name: sp.Name, X: sp.X, Y: sp.Y, Z: sp.Z,
			Values: append([]float64(nil), r.Values...),
		})
	}
	return out
}

// EngineStats holds the parallel engine's communication counters: the
// shared-memory analogues of MPI message and volume counts.
type EngineStats struct {
	// Applies counts stiffness applications dispatched to the engine.
	Applies int64
	// Messages counts per-apply active-rank contributions.
	Messages int64
	// Volume counts node-values exchanged in merges.
	Volume int64
}

// Stats describes a simulation's configuration and accumulated work. The
// speedup fields follow the paper: TheoreticalSpeedup is the Eq. 9 model
// for the level assignment, EffectiveSpeedup the work-based saving the
// LTS scheme actually achieves, and Efficiency their ratio (halo
// overhead). EffectiveSpeedup and Efficiency are zero for the global
// scheme.
type Stats struct {
	// Mesh is the benchmark mesh name.
	Mesh string
	// Elements, Nodes and DOF size the discretization; Comps is components
	// per node; Degree the SEM polynomial degree.
	Elements, Nodes, DOF, Comps, Degree int
	// LTS reports which scheme is stepping.
	LTS bool
	// Levels is the number of LTS p-levels; PMax the finest substep
	// multiplier; CoarseDt the coarse step Δt.
	Levels   int
	PMax     int
	CoarseDt float64
	// TheoreticalSpeedup is the paper's Eq. 9 model.
	TheoreticalSpeedup float64
	// EffectiveSpeedup and Efficiency report the measured work saving
	// (LTS only).
	EffectiveSpeedup float64
	Efficiency       float64
	// Cycles counts completed coarse cycles; ElemApplies the element
	// stiffness applications performed.
	Cycles      int64
	ElemApplies int64
	// Workers is the resolved rank-worker count; Partitioner the strategy
	// used when the engine is active (empty otherwise); Kernel the
	// stiffness execution strategy.
	Workers     int
	Partitioner Partitioner
	Kernel      Kernel
	// SIMD is the microkernel tier the batched deg=4 kernels dispatch to
	// in this process: "avx512", "avx2", "sse2" or "go" (see
	// sem.ActiveSIMDTier). All tiers are bitwise-identical; the field
	// records speed, not results.
	SIMD string
	// Backend reports the execution backend ("local" or "distributed").
	Backend string
	// Ranks is the number of rank processes and Parts the owner-computes
	// decomposition width of the distributed backend; both zero for the
	// local backend.
	Ranks, Parts int
	// Engine holds the execution engine's communication counters: the
	// shared-memory merge accounting of the local backend, or the real
	// per-rank halo messages (summed over ranks) of the distributed one.
	// Nil when running sequentially.
	Engine *EngineStats
	// ArtifactLookups and ArtifactHits count this simulation's
	// consultations of the attached artifact cache during build (mesh,
	// operator, partition); both are zero without WithArtifactCache.
	// Batch-plan sharing is accounted in the cache's own Counters.
	ArtifactLookups, ArtifactHits int64
	// Checkpoints counts checkpoint files written by this simulation
	// (WithCheckpointEvery plus explicit Checkpoint calls).
	Checkpoints int64
	// Recoveries counts the distributed backend's transparent
	// rank-failure recoveries; RecoveryMillis is the wall time they
	// consumed. Both are zero for the local backend.
	Recoveries     int
	RecoveryMillis int64
	// LevelTimes is the telemetry timing table (WithTelemetry locally,
	// Distributed.Telemetry remotely; nil otherwise): one row per LTS
	// level, with the cumulative stiffness-kernel nanoseconds each rank
	// spent on that level. The local backend reports a single column.
	LevelTimes []LevelStats
	// WorkerBusyNanos is the local engine's cumulative per-worker kernel
	// time (telemetry only; nil for the distributed backend or without
	// workers).
	WorkerBusyNanos []int64
	// Rebalances counts the distributed backend's automatic part→rank
	// rebalances (Distributed.AutoRebalance); RebalanceMillis is the
	// wall time the snapshots, relaunches and restores consumed.
	Rebalances      int
	RebalanceMillis int64
	// DegradedRanks counts ranks the distributed backend permanently
	// retired under WithDegradedMode — each one a shrink of the rank set
	// with the lost rank's parts redistributed onto the survivors;
	// DegradedMillis is the wall time the shrinks consumed. Both are zero
	// for a run that never lost a rank for good.
	DegradedRanks  int
	DegradedMillis int64
	// LinkRetries counts rank connection attempts beyond the first
	// (bounded reconnect-with-backoff absorbing transient link errors);
	// CorruptFrames counts CRC-failed frames the coordinator rejected and
	// routed into recovery. Both are zero for the local backend.
	LinkRetries   int64
	CorruptFrames int64
	// TunedWorkers, TunedRanks and TunedKernel report the shape selected
	// by WithAutoTune (zero values without it).
	TunedWorkers, TunedRanks int
	TunedKernel              Kernel
}

// LevelStats is one LTS level's telemetry row.
type LevelStats struct {
	// Level is the 0-based p-level (0 = coarsest).
	Level int
	// RankNanos[r] is rank r's cumulative stiffness-kernel nanoseconds
	// in this level (a single entry for the local backend).
	RankNanos []int64
}

// Stats returns the simulation's metadata and work counters. It may be
// called before, during (from probes) and after Run.
func (s *Simulation) Stats() Stats {
	st := Stats{
		Mesh:               s.m.Name,
		Elements:           s.m.NumElements(),
		Nodes:              s.geom.NumNodes(),
		DOF:                s.geom.NDof(),
		Comps:              s.geom.Comps(),
		Degree:             s.set.degree,
		LTS:                s.set.lts,
		Levels:             s.lv.NumLevels,
		PMax:               s.lv.PMax(),
		CoarseDt:           s.lv.CoarseDt,
		TheoreticalSpeedup: s.lv.TheoreticalSpeedup(),
		Workers:            s.workers,
		Kernel:             s.set.kernel,
		SIMD:               sem.ActiveSIMDTier(),
		ArtifactLookups:    s.artLookups,
		ArtifactHits:       s.artHits,
	}
	st.Backend = s.set.backend.backendName()
	st.Checkpoints = s.ckptWrites
	if s.tunePlan != nil {
		st.TunedWorkers = s.tunePlan.Best.Workers
		st.TunedRanks = s.tunePlan.Best.Ranks
		st.TunedKernel = Kernel(s.tunePlan.Best.Kernel)
	}
	if s.dist != nil {
		n, d := s.dist.Recoveries()
		st.Recoveries = n
		st.RecoveryMillis = d.Milliseconds()
		n, d = s.dist.Rebalances()
		st.Rebalances = n
		st.RebalanceMillis = d.Milliseconds()
		n, d = s.dist.Degraded()
		st.DegradedRanks = n
		st.DegradedMillis = d.Milliseconds()
		st.CorruptFrames = s.dist.CorruptFrames()
	}
	switch {
	case s.ltsS != nil:
		st.Cycles = s.ltsS.CycleCount()
		st.ElemApplies = s.ltsS.Work.ElemApplies
		st.EffectiveSpeedup = s.ltsS.EffectiveSpeedup()
		st.Efficiency = s.ltsS.Efficiency()
		if s.ltsS.Telemetry {
			for li, n := range s.ltsS.Work.LevelNanos {
				st.LevelTimes = append(st.LevelTimes, LevelStats{Level: li, RankNanos: []int64{n}})
			}
		}
	case s.gS != nil:
		st.Cycles = s.gS.StepCount() / int64(s.lv.PMax())
		st.ElemApplies = s.gS.ElementSteps
	case s.dist != nil:
		// Rank 0's scheme carries the work model (identical on every rank
		// under the replicated stepping discipline); the halo counters are
		// summed over ranks. A lost rank leaves the counters zero — the
		// failure surfaces through Run/Close, not here.
		st.Ranks = s.distCfg.Ranks
		st.Parts = s.distCfg.Parts
		st.Partitioner = s.set.partitioner
		if rs, err := s.dist.Stats(); err == nil && len(rs) > 0 {
			st.ElemApplies = rs[0].ElemApplies
			if s.set.lts {
				st.Cycles = rs[0].Cycles
				st.EffectiveSpeedup = rs[0].EffectiveSpeedup
				st.Efficiency = rs[0].Efficiency
			} else {
				st.Cycles = rs[0].Cycles / int64(s.lv.PMax())
			}
			eng := &EngineStats{Applies: rs[0].Applies}
			for _, r := range rs {
				eng.Messages += r.Messages
				eng.Volume += r.Volume
				st.LinkRetries += r.LinkRetries
			}
			st.Engine = eng
			if s.distCfg.Telemetry && len(rs[0].LevelNanos) > 0 {
				for li := range rs[0].LevelNanos {
					row := LevelStats{Level: li, RankNanos: make([]int64, len(rs))}
					for r, rst := range rs {
						if li < len(rst.LevelNanos) {
							row.RankNanos[r] = rst.LevelNanos[li]
						}
					}
					st.LevelTimes = append(st.LevelTimes, row)
				}
			}
		}
	}
	if s.pop != nil {
		st.Partitioner = s.set.partitioner
		es := s.pop.Stats()
		st.Engine = &EngineStats{Applies: es.Applies, Messages: es.Messages, Volume: es.Volume}
		if s.set.telemetry {
			st.WorkerBusyNanos = s.pop.WorkerBusyNanos()
		}
	}
	return st
}

// Plan is the cheap, operator-free description of a configuration that
// Describe resolves: mesh size, LTS level structure and bounding box —
// what a caller needs to place sources and receivers or to pick a wavelet
// frequency before building the full Simulation.
type Plan struct {
	// Mesh is the benchmark mesh name; Elements its element count.
	Mesh     string
	Elements int
	// Levels, PMax, CoarseDt and LevelCounts describe the LTS level
	// assignment for the configured degree and CFL.
	Levels      int
	PMax        int
	CoarseDt    float64
	LevelCounts []int
	// TheoreticalSpeedup is the paper's Eq. 9 model.
	TheoreticalSpeedup float64
	// X0..Z1 is the mesh bounding box.
	X0, X1, Y0, Y1, Z0, Z1 float64
}

// Describe resolves the mesh and LTS level assignment of a configuration
// without building operators or steppers. Only the mesh, degree and CFL
// options matter; the rest are validated and ignored.
func Describe(opts ...Option) (*Plan, error) {
	set := defaultSettings()
	for _, o := range opts {
		if err := o(set); err != nil {
			return nil, err
		}
	}
	gen := mesh.Generators[set.mesh]
	m := gen(set.scale)
	lv := mesh.AssignLevels(m, set.levelCFL(), 0)
	p := &Plan{
		Mesh:               set.mesh,
		Elements:           m.NumElements(),
		Levels:             lv.NumLevels,
		PMax:               lv.PMax(),
		CoarseDt:           lv.CoarseDt,
		LevelCounts:        append([]int(nil), lv.Count...),
		TheoreticalSpeedup: lv.TheoreticalSpeedup(),
	}
	p.X0, p.X1, p.Y0, p.Y1, p.Z0, p.Z1 = m.Extent()
	return p, nil
}
