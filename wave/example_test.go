package wave_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"golts/wave"
)

// A minimal run: build a small acoustic LTS simulation with a default
// source and receiver, advance it, and read the work statistics.
func Example() {
	sim, err := wave.New(
		wave.WithMesh("trench", 0.0005),
		wave.WithPhysics(wave.Acoustic),
		wave.WithCycles(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	if err := sim.Run(context.Background(), 0); err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("mesh %s: %d elements, %d LTS levels\n", st.Mesh, st.Elements, st.Levels)
	fmt.Printf("cycles completed: %d\n", st.Cycles)
	fmt.Printf("seismogram samples per receiver: %d\n", len(sim.Seismograms().Times))
	// Output:
	// mesh trench: 992 elements, 4 LTS levels
	// cycles completed: 3
	// seismogram samples per receiver: 3
}

// Options validate eagerly and return typed errors: match them with
// errors.Is, or unwrap the *OptionError for the offending option's name.
func ExampleNew_validation() {
	_, err := wave.New(wave.WithDegree(40))
	fmt.Println(errors.Is(err, wave.ErrDegreeRange))
	var oe *wave.OptionError
	if errors.As(err, &oe) {
		fmt.Println(oe.Option)
	}

	// Cross-field rules are checked when the simulation is built: an
	// acoustic field has a single component.
	_, err = wave.New(
		wave.WithMesh("trench", 0.0005),
		wave.WithPhysics(wave.Acoustic),
		wave.WithSource(wave.Source{X: 0.5, Y: 0.5, Z: 0.5, Comp: 2, F0: 10}),
	)
	fmt.Println(errors.Is(err, wave.ErrComponentRange))
	// Output:
	// true
	// WithDegree
	// true
}

// Probes observe every cycle; SnapshotEvery thins them to a cadence.
func ExampleSnapshotEvery() {
	sim, err := wave.New(wave.WithMesh("trench", 0.0005), wave.WithCycles(4))
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	progress := wave.SnapshotEvery(2, func(f wave.Frame) error {
		fmt.Printf("cycle %d of 4\n", f.Cycle)
		return nil
	})
	if err := sim.Run(context.Background(), 0, progress); err != nil {
		log.Fatal(err)
	}
	// Output:
	// cycle 2 of 4
	// cycle 4 of 4
}

// Describe resolves mesh metadata — extent, levels, the coarse step —
// without building operators, for placing sources and receivers.
func ExampleDescribe() {
	plan, err := wave.Describe(wave.WithMesh("trench", 0.0005))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d elements in %d levels, finest substep Δt/%d\n",
		plan.Elements, plan.Levels, plan.PMax)
	// Output:
	// 992 elements in 4 levels, finest substep Δt/8
}

// PartitionMesh exposes the LTS-aware partitioners with their quality
// metrics.
func ExamplePartitionMesh() {
	rep, err := wave.PartitionMesh("trench", 0.0005, wave.PartitionOptions{
		Parts: 4, Method: wave.ScotchP, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	used := make(map[int32]bool)
	for _, p := range rep.Part {
		used[p] = true
	}
	fmt.Printf("%s split %d elements over %d parts\n", rep.Method, len(rep.Part), len(used))
	// Output:
	// scotch-p split 992 elements over 4 parts
}
