package wave_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"golts/wave"
)

// TestPartsExceedElementsRejected: a decomposition wider than the mesh
// must fail at build time with the typed sentinel. Pre-fix, New handed
// the impossible width to the recursive-bisection partitioner, which
// effectively hung (minutes of splitting singleton element sets) instead
// of erroring — this test timed out on the old code.
func TestPartsExceedElementsRejected(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := wave.New(tinyOpts(
			wave.WithBackend(wave.Distributed{Ranks: 1, Parts: 100000}),
		)...)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, wave.ErrPartsRange) {
			t.Fatalf("New error = %v, want ErrPartsRange", err)
		}
		var oe *wave.OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("New error %v is not an *OptionError", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("New did not return: impossible parts reached the partitioner")
	}
}

// TestWorkersExceedElementsRejected: an explicit worker count wider than
// the mesh fails eagerly rather than hanging in the partitioner.
func TestWorkersExceedElementsRejected(t *testing.T) {
	_, err := wave.New(tinyOpts(wave.WithWorkers(100000))...)
	if !errors.Is(err, wave.ErrWorkersRange) {
		t.Fatalf("New error = %v, want ErrWorkersRange", err)
	}
}

// TestAutoWorkersClampToElements: the auto-sized worker count
// (WithWorkers(0)) must build on a mesh with fewer elements than the
// machine has cores — it clamps instead of erroring — and still run.
func TestAutoWorkersClampToElements(t *testing.T) {
	sim, err := wave.New(tinyOpts(wave.WithWorkers(0))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	st := sim.Stats()
	if st.Workers < 1 || st.Workers > st.Elements {
		t.Fatalf("auto workers = %d outside [1, %d elements]", st.Workers, st.Elements)
	}
	if err := sim.Run(context.Background(), 1); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestValidateUpfront: Validate applies option validation without
// building anything — the cheap pre-flight CLIs run on their flags.
func TestValidateUpfront(t *testing.T) {
	cases := []struct {
		name     string
		opts     []wave.Option
		sentinel error
	}{
		{"ranks-above-parts", []wave.Option{
			wave.WithBackend(wave.Distributed{Ranks: 4, Parts: 2}),
		}, wave.ErrPartsRange},
		{"nonpositive-cycles", []wave.Option{wave.WithCycles(0)}, wave.ErrCyclesRange},
		{"negative-cycles", []wave.Option{wave.WithCycles(-3)}, wave.ErrCyclesRange},
		{"unknown-physics", []wave.Option{wave.WithPhysics("plasma")}, wave.ErrUnknownPhysics},
		{"zero-ranks", []wave.Option{
			wave.WithBackend(wave.Distributed{Ranks: 0}),
		}, wave.ErrRanksRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := wave.Validate(tc.opts...)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("Validate error = %v, want %v", err, tc.sentinel)
			}
			var oe *wave.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate error %v is not an *OptionError", err)
			}
		})
	}
	if err := wave.Validate(tinyOpts(
		wave.WithBackend(wave.Distributed{Ranks: 2, Parts: 4}),
	)...); err != nil {
		t.Fatalf("Validate rejected a valid configuration: %v", err)
	}
}
