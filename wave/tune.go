package wave

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"golts/internal/cluster"
	"golts/internal/tune"
)

// WithTelemetry enables the per-level, per-worker timing counters on the
// local backend (the distributed backend has its own knob,
// Distributed.Telemetry). The counters are two monotonic clock reads per
// kernel invocation — cheap, but not free, so they are off by default.
// Stats reports them through LevelTimes and WorkerBusyNanos.
func WithTelemetry() Option {
	return func(s *settings) error {
		s.telemetry = true
		return nil
	}
}

// WithAutoTune makes New calibrate the deployment shape before building
// the simulation: short probe runs (a few coarse cycles each) sweep a
// candidate grid — worker counts and both stiffness kernels on the local
// backend, rank counts and kernels on the distributed one — until the
// wall budget is spent, and the fastest measured shape is applied to the
// configuration. The resulting plan, including the measured-vs-predicted
// table against the internal/cluster cost model, is available from
// Simulation.TunePlan, and is cached in the attached ArtifactCache by
// configuration key so a job server calibrates each configuration once.
//
// Auto-tuned worker counts depend on the host (like WithWorkers(0)), so
// results are bitwise reproducible per (configuration, plan) — not
// across machines with different calibration outcomes. Distributed
// tuning only moves the rank count and kernel; the decomposition width
// Parts stays fixed, so those results do not change at all.
func WithAutoTune(budget time.Duration) Option {
	return func(s *settings) error {
		if budget <= 0 {
			return optErr("WithAutoTune", ErrTuneSpec, "budget must be positive, got %v", budget)
		}
		s.autoTune = budget
		return nil
	}
}

// tuneProbeCycles is the length of each calibration probe run.
const tuneProbeCycles = 3

// tuneKey is the calibration plan's artifact-cache key: every option
// that changes what the probes measure (mesh, discretization, scheme,
// partitioner, backend family and its fixed decomposition width).
func (s *settings) tuneKey() string {
	shape := "local"
	if be, ok := s.backend.(Distributed); ok {
		shape = fmt.Sprintf("dist%d", be.parts())
	}
	return fmt.Sprintf("tune|%s|%.17g|%.17g|%s|%d|%t|%s|%d|%s|%d",
		s.mesh, s.scale, s.cfl, s.physics, s.degree, s.lts,
		s.partitioner, s.seed, shape, runtime.GOMAXPROCS(0))
}

// applyAutoTune resolves (or retrieves) the calibration plan for the
// settings and applies its best shape in place. Called at the top of
// build; probe runs recurse into build with autoTune cleared.
func applyAutoTune(set *settings) (*tune.Plan, error) {
	resolve := func() (*tune.Plan, error) {
		return tune.Calibrate(tuneCandidates(set), set.autoTune, tuneProbeCycles, tuneRunner(set))
	}
	var plan *tune.Plan
	var err error
	if set.artifacts != nil {
		var v any
		v, _, err = set.artifacts.memo.Get(set.tuneKey(), func() (any, error) { return resolve() })
		if err == nil {
			plan = v.(*tune.Plan)
		}
	} else {
		plan, err = resolve()
	}
	if err != nil {
		return nil, fmt.Errorf("wave: auto-tune: %w", err)
	}
	best := plan.Best
	if best.Kernel == string(PerElement) {
		set.kernel = PerElement
	} else {
		set.kernel = Batched
	}
	if be, ok := set.backend.(Distributed); ok {
		// Parts stays fixed: only the process count moves, which the
		// decomposition-pinned assembly order makes bitwise-invisible.
		be.Parts = be.parts()
		be.Ranks = best.Ranks
		set.backend = be
	} else {
		set.workers = best.Workers
	}
	return plan, nil
}

// tuneCandidates builds the probe grid. Local: worker counts 1, 2, 4,
// ... up to GOMAXPROCS (capped at 8) × both kernels. Distributed: rank
// counts {1, Ranks} at fixed Parts × both kernels.
func tuneCandidates(set *settings) []tune.Candidate {
	kernels := []string{string(Batched), string(PerElement)}
	var cands []tune.Candidate
	if be, ok := set.backend.(Distributed); ok {
		ranks := []int{1}
		if be.Ranks > 1 {
			ranks = append(ranks, be.Ranks)
		}
		for _, r := range ranks {
			for _, k := range kernels {
				cands = append(cands, tune.Candidate{Ranks: r, Kernel: k})
			}
		}
		return cands
	}
	max := runtime.GOMAXPROCS(0)
	if max > 8 {
		max = 8
	}
	for _, k := range kernels {
		for w := 1; w <= max; w *= 2 {
			cands = append(cands, tune.Candidate{Workers: w, Kernel: k})
		}
	}
	return cands
}

// tuneRunner returns the probe executor: each probe builds a stripped
// copy of the configuration (no sinks, probes or checkpoints; telemetry
// on) under the candidate shape, runs tuneProbeCycles coarse cycles
// against the wall clock, and pairs the measurement with the
// internal/cluster cost model's predicted cycle time for the same
// decomposition.
func tuneRunner(set *settings) tune.Runner {
	return func(c tune.Candidate, cycles int) (tune.Result, error) {
		probe := *set
		probe.autoTune = 0
		probe.telemetry = true
		probe.sinks = nil
		probe.probes = nil
		probe.ckptPath = ""
		probe.ckptEvery = 0
		probe.cycles = cycles
		probe.kernel = Kernel(c.Kernel)
		if c.Kernel == string(PerElement) {
			probe.kernel = PerElement
		}
		k := c.Workers
		if be, ok := set.backend.(Distributed); ok {
			be.Parts = be.parts()
			be.Ranks = c.Ranks
			be.Telemetry = true
			probe.backend = be
			k = be.Parts
		} else {
			probe.workers = c.Workers
			probe.backend = Local
		}

		sim, err := build(&probe)
		if err != nil {
			return tune.Result{}, err
		}
		defer sim.Close()
		start := time.Now()
		if err := sim.Run(context.Background(), cycles); err != nil {
			return tune.Result{}, err
		}
		wall := time.Since(start)

		res := tune.Result{CycleNanos: float64(wall.Nanoseconds()) / float64(cycles)}
		st := sim.Stats()
		for _, lt := range st.LevelTimes {
			var n int64
			for _, rn := range lt.RankNanos {
				n += rn
			}
			res.LevelNanos = append(res.LevelNanos, n)
		}
		res.ModelSeconds = modelCycleSeconds(sim, &probe, k)
		return res, nil
	}
}

// modelCycleSeconds asks the internal/cluster simulator for the
// predicted coarse-cycle time of the probe's decomposition under the
// CPU cost model; 0 when the prediction is unavailable (the fit simply
// skips the probe).
func modelCycleSeconds(sim *Simulation, probe *settings, k int) float64 {
	if !probe.lts || k < 1 {
		return 0
	}
	var part []int32
	if k == 1 {
		part = make([]int32, sim.m.NumElements())
	} else {
		var err error
		if part, err = partitionAssign(sim.m, sim.lv, k, probe); err != nil {
			return 0
		}
	}
	a, err := cluster.NewAssignment(sim.m, sim.lv, part, k)
	if err != nil {
		return 0
	}
	return cluster.Simulate(a, cluster.CPUModel).Time
}

// TunePlan returns the calibration plan applied by WithAutoTune (nil
// without it): the selected shape plus the measured-vs-predicted table
// behind the choice.
func (s *Simulation) TunePlan() *tune.Plan { return s.tunePlan }
