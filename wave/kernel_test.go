package wave_test

import (
	"context"
	"errors"
	"testing"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/sem"
	"golts/wave"
)

// TestWithKernelValidation checks the option's eager validation and the
// Stats plumbing of the kernel choice.
func TestWithKernelValidation(t *testing.T) {
	if _, err := wave.New(wave.WithKernel("bogus")); !errors.Is(err, wave.ErrUnknownKernel) {
		t.Fatalf("WithKernel(bogus) error = %v, want ErrUnknownKernel", err)
	}
	sim, err := wave.New(wave.WithMesh("trench", 0.0005), wave.WithKernel(wave.PerElement))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if got := sim.Stats().Kernel; got != wave.PerElement {
		t.Fatalf("Stats().Kernel = %q, want %q", got, wave.PerElement)
	}
}

// TestKernelModesBitwise pins the facade's two kernels bitwise against
// each other: the batched default and the per-element reference must
// produce identical seismograms for both steppers.
func TestKernelModesBitwise(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []wave.Option
	}{
		{"acoustic-lts", []wave.Option{
			wave.WithMesh("trench", 0.0005), wave.WithPhysics(wave.Acoustic),
			wave.WithLTS(), wave.WithCycles(3),
			wave.WithSource(wave.Source{X: 0.5, Y: 0.5, Z: 0.5, F0: 10, T0: 0.05}),
			wave.WithReceiver(wave.Receiver{Name: "near", X: 0.5, Y: 0.5, Z: 0.5}),
		}},
		{"elastic-global", []wave.Option{
			wave.WithMesh("trench", 0.0005), wave.WithPhysics(wave.Elastic),
			wave.WithGlobalNewmark(), wave.WithCycles(2),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(k wave.Kernel) *wave.Seismograms {
				sim, err := wave.New(append([]wave.Option{wave.WithKernel(k)}, tc.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				defer sim.Close()
				if err := sim.Run(context.Background(), 0); err != nil {
					t.Fatal(err)
				}
				return sim.Seismograms()
			}
			batched := run(wave.Batched)
			scalar := run(wave.PerElement)
			for i, tr := range batched.Traces {
				for j, v := range tr.Values {
					if v != scalar.Traces[i].Values[j] {
						t.Fatalf("trace %d sample %d: batched %v != per-element %v",
							i, j, v, scalar.Traces[i].Values[j])
					}
				}
			}
		})
	}
}

// TestMultiSourceMatchesDirect checks the accumulating WithSource against
// a directly built LTS scheme carrying the same two point sources: the
// facade must inject both, each at its node's level, bitwise.
func TestMultiSourceMatchesDirect(t *testing.T) {
	const scale, cycles = 0.0005, 3
	srcs := []wave.Source{
		{X: 0.5, Y: 0.5, Z: 0.5, F0: 10, T0: 0.05},
		{X: 0.3, Y: 0.6, Z: 0.4, F0: 14, T0: 0.03},
	}
	sim, err := wave.New(
		wave.WithMesh("trench", scale), wave.WithPhysics(wave.Acoustic),
		wave.WithLTS(), wave.WithCycles(cycles),
		wave.WithSource(srcs[0]), wave.WithSource(srcs[1]),
		wave.WithReceiver(wave.Receiver{Name: "near", X: 0.5, Y: 0.5, Z: 0.5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if got := sim.Sources(); len(got) != 2 || got[0] != srcs[0] || got[1] != srcs[1] {
		t.Fatalf("Sources() = %+v, want the two configured sources", got)
	}
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	facade := sim.Seismograms()

	m := mesh.Generators["trench"](scale)
	lv := mesh.AssignLevels(m, 0.4/16, 0)
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	var semSrcs []sem.Source
	for _, s := range srcs {
		n := legacyNearest(op, s.X, s.Y, s.Z)
		semSrcs = append(semSrcs, sem.Source{Dof: int(n), W: sem.Ricker{F0: s.F0, T0: s.T0}})
	}
	sch, err := lts.FromMeshLevels(op, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	sch.SetSources(semSrcs)
	rec := &sem.Receiver{Dof: int(legacyNearest(op, 0.5, 0.5, 0.5))}
	for i := 0; i < cycles; i++ {
		sch.Step()
		rec.Record(sch.Time(), sch.U)
	}
	want := rec.Values
	got := facade.Traces[0].Values
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d", len(got), len(want))
	}
	nonzero := false
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: facade %v != direct %v", i, got[i], want[i])
		}
		if want[i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("trace is identically zero; test records no signal")
	}
}

// TestWithSourceComponentValidation checks per-source eager and build
// validation of the accumulating option.
func TestWithSourceComponentValidation(t *testing.T) {
	_, err := wave.New(
		wave.WithSource(wave.Source{X: 0, Y: 0, Z: 0, F0: 5}),
		wave.WithSource(wave.Source{X: 1, Y: 1, Z: 1, F0: 5, Comp: 7}),
	)
	if !errors.Is(err, wave.ErrComponentRange) {
		t.Fatalf("bad second source error = %v, want ErrComponentRange", err)
	}
	_, err = wave.New(
		wave.WithPhysics(wave.Acoustic),
		wave.WithSource(wave.Source{X: 0, Y: 0, Z: 0, F0: 5}),
		wave.WithSource(wave.Source{X: 1, Y: 1, Z: 1, F0: 5, Comp: 2}),
	)
	if !errors.Is(err, wave.ErrComponentRange) {
		t.Fatalf("acoustic comp-2 source error = %v, want ErrComponentRange", err)
	}
}
