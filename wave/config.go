package wave

import (
	"io"

	"golts/internal/simio"
)

// FromConfigFile builds a Simulation from a JSON run-configuration file
// (the cmd/wavesim format, see internal/simio.Config). Options passed as
// extra are applied after the configuration and may override it or add
// execution settings the file does not carry (workers, partitioner, seed,
// sinks).
//
// A configured source with F0 == 0 keeps the default placement and
// wavelet; its component is still honoured (WithSourceComponent), as in
// the legacy driver.
func FromConfigFile(path string, extra ...Option) (*Simulation, error) {
	cfg, err := simio.LoadConfig(path)
	if err != nil {
		return nil, err
	}
	return New(append(configOptions(cfg), extra...)...)
}

// FromConfig builds a Simulation from a JSON run configuration read from
// r; see FromConfigFile.
func FromConfig(r io.Reader, extra ...Option) (*Simulation, error) {
	cfg, err := simio.ParseConfig(r)
	if err != nil {
		return nil, err
	}
	return New(append(configOptions(cfg), extra...)...)
}

// ConfigOptions parses a JSON run configuration from r and returns the
// facade options it denotes, without building anything. Callers that
// need to re-apply one stored configuration to several entry points —
// e.g. a job service building with New on the first attempt and Resume
// after a restart — go through this instead of FromConfig.
func ConfigOptions(r io.Reader) ([]Option, error) {
	cfg, err := simio.ParseConfig(r)
	if err != nil {
		return nil, err
	}
	return configOptions(cfg), nil
}

// configOptions translates a validated simio.Config into facade options.
func configOptions(c *simio.Config) []Option {
	opts := []Option{
		WithMesh(c.Mesh, c.Scale),
		WithPhysics(Physics(c.Physics)),
		WithDegree(c.Degree),
		WithCFL(c.CFL),
		WithCycles(c.Cycles),
	}
	if c.LTS {
		opts = append(opts, WithLTS())
	} else {
		opts = append(opts, WithGlobalNewmark())
	}
	if c.Source.F0 != 0 {
		opts = append(opts, WithSource(Source{
			X: c.Source.X, Y: c.Source.Y, Z: c.Source.Z,
			Comp: c.Source.Comp, F0: c.Source.F0, T0: c.Source.T0,
		}))
	} else if c.Source.Comp != 0 {
		// A component-only source keeps the default placement but applies
		// the force on the requested component, as the legacy driver did.
		opts = append(opts, WithSourceComponent(c.Source.Comp))
	}
	for _, r := range c.Receivers {
		opts = append(opts, WithReceiver(Receiver{
			Name: r.Name, X: r.X, Y: r.Y, Z: r.Z, Comp: r.Comp,
		}))
	}
	if c.Sponge.Strength > 0 {
		opts = append(opts, WithSponge(Sponge{
			Width: c.Sponge.Width, Strength: c.Sponge.Strength, Faces: c.Sponge.Faces,
		}))
	}
	return opts
}
