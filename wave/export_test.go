package wave

import (
	"encoding/csv"
	"io"
)

// Test-only constructors: the closer-attached sink lifecycles are
// normally reachable only through FileSink's lazily-created *os.File, so
// the error-path regression tests build them over an arbitrary
// WriteCloser here.

func NewCSVCloserSinkForTest(wc io.WriteCloser) Sink {
	return &csvSink{cw: csv.NewWriter(wc), closer: wc}
}

func NewJSONCloserSinkForTest(wc io.WriteCloser) Sink {
	return &jsonSink{w: wc, closer: wc}
}
