module golts

go 1.21
