// Cluster scaling: a Fig. 9-style experiment in miniature — simulate the
// trench mesh on a CPU cluster (8 ranks/node) and a GPU cluster (1
// rank/node) across a range of node counts, comparing partitioners
// against the LTS ideal curve and the non-LTS baseline. Partitions come
// from the golts/wave facade; the cluster cost model interprets them.
//
// Run with: go run ./examples/cluster_scaling [-scale 0.1] [-nodes 4,8,16,32]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"golts/internal/cluster"
	"golts/internal/mesh"
	"golts/wave"
)

func main() {
	scale := flag.Float64("scale", 0.1, "trench mesh scale")
	nodeList := flag.String("nodes", "4,8,16,32", "comma-separated node counts")
	flag.Parse()

	const cfl = 0.4
	nodes, err := parseNodes(*nodeList)
	if err != nil {
		log.Fatal(err)
	}
	// The cluster cost model consumes the raw mesh and level assignment;
	// rebuild the same (deterministic) pair the facade partitions.
	m := mesh.Trench(*scale)
	lv := mesh.AssignLevels(m, cfl, 0)
	model := lv.TheoreticalSpeedup()
	fmt.Printf("trench mesh: %d elements, model speedup %.2fx\n\n", m.NumElements(), model)

	// The facade normalises CFL by degree²; the level assignment (and so
	// the partition) is invariant to that factor, so these partitions line
	// up with the raw-CFL levels the cost model uses.
	part := func(method wave.Partitioner, k int, imb float64) []int32 {
		rep, err := wave.PartitionMesh("trench", *scale, wave.PartitionOptions{
			Parts: k, Method: method, Imbalance: imb, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep.Part
	}

	run := func(cm cluster.CostModel) {
		fmt.Printf("--- %s cluster (%d rank(s)/node), performance vs non-LTS %s @ %d nodes ---\n",
			cm.Name, cm.RanksPerNode, cm.Name, nodes[0])
		fmt.Printf("%6s %9s %10s %10s %10s\n", "nodes", "non-LTS", "LTS ideal", "SCOTCH-P", "PaToH 0.01")
		var base float64
		for ni, nd := range nodes {
			k := nd * cm.RanksPerNode
			non, err := cluster.SimulateNonLTS(m, lv, part(wave.Scotch, k, 0.05), k, cm)
			if err != nil {
				log.Fatal(err)
			}
			if ni == 0 {
				base = non.Performance
			}
			spA, err := cluster.NewAssignment(m, lv, part(wave.ScotchP, k, 0.03), k)
			if err != nil {
				log.Fatal(err)
			}
			sp := cluster.Simulate(spA, cm)
			ptA, err := cluster.NewAssignment(m, lv, part(wave.Patoh, k, 0.01), k)
			if err != nil {
				log.Fatal(err)
			}
			pt := cluster.Simulate(ptA, cm)
			ideal := model * float64(nd) / float64(nodes[0])
			fmt.Printf("%6d %9.2f %10.2f %10.2f %10.2f\n",
				nd, non.Performance/base, ideal, sp.Performance/base, pt.Performance/base)
		}
		fmt.Println()
	}
	run(cluster.CPUModel)
	run(cluster.GPUModel)
	fmt.Println("expected shape (paper Fig. 9): LTS tracks the ideal curve on CPUs;")
	fmt.Println("GPU LTS starts strong but strong-scaling efficiency decays with kernel")
	fmt.Println("launch overhead on the small fine levels.")
}

func parseNodes(s string) ([]int, error) {
	var nodes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q", f)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("empty node list")
	}
	return nodes, nil
}
