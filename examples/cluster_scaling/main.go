// Cluster scaling: a Fig. 9-style experiment in miniature — simulate the
// trench mesh on a CPU cluster (8 ranks/node) and a GPU cluster (1
// rank/node) from 4 to 32 nodes, comparing partitioners against the LTS
// ideal curve and the non-LTS baseline.
//
// Run with: go run ./examples/cluster_scaling
package main

import (
	"fmt"
	"log"

	"golts/internal/cluster"
	"golts/internal/mesh"
	"golts/internal/partition"
)

func main() {
	m := mesh.Trench(0.1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	model := lv.TheoreticalSpeedup()
	nodes := []int{4, 8, 16, 32}
	fmt.Printf("trench mesh: %d elements, model speedup %.2fx\n\n", m.NumElements(), model)

	run := func(cm cluster.CostModel) {
		fmt.Printf("--- %s cluster (%d rank(s)/node), performance vs non-LTS %s @ %d nodes ---\n",
			cm.Name, cm.RanksPerNode, cm.Name, nodes[0])
		fmt.Printf("%6s %9s %10s %10s %10s\n", "nodes", "non-LTS", "LTS ideal", "SCOTCH-P", "PaToH 0.01")
		var base float64
		for ni, nd := range nodes {
			k := nd * cm.RanksPerNode
			nonPart := mustPart(m, lv, partition.Scotch, k, 0.05)
			non, err := cluster.SimulateNonLTS(m, lv, nonPart, k, cm)
			if err != nil {
				log.Fatal(err)
			}
			if ni == 0 {
				base = non.Performance
			}
			spPart := mustPart(m, lv, partition.ScotchP, k, 0.03)
			spA, err := cluster.NewAssignment(m, lv, spPart, k)
			if err != nil {
				log.Fatal(err)
			}
			sp := cluster.Simulate(spA, cm)
			ptPart := mustPart(m, lv, partition.Patoh, k, 0.01)
			ptA, err := cluster.NewAssignment(m, lv, ptPart, k)
			if err != nil {
				log.Fatal(err)
			}
			pt := cluster.Simulate(ptA, cm)
			ideal := model * float64(nd) / float64(nodes[0])
			fmt.Printf("%6d %9.2f %10.2f %10.2f %10.2f\n",
				nd, non.Performance/base, ideal, sp.Performance/base, pt.Performance/base)
		}
		fmt.Println()
	}
	run(cluster.CPUModel)
	run(cluster.GPUModel)
	fmt.Println("expected shape (paper Fig. 9): LTS tracks the ideal curve on CPUs;")
	fmt.Println("GPU LTS starts strong but strong-scaling efficiency decays with kernel")
	fmt.Println("launch overhead on the small fine levels.")
}

func mustPart(m *mesh.Mesh, lv *mesh.Levels, method partition.Method, k int, imb float64) []int32 {
	res, err := partition.PartitionMesh(m, lv, partition.Options{
		K: k, Method: method, Imbalance: imb, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Part
}
