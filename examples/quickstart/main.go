// Quickstart: local time stepping on a 1-D bar in ~80 lines.
//
// A bar of 40 elements has a refined patch in the middle (elements 8x
// smaller). The global Newmark scheme must step the whole bar at the
// smallest element's CFL limit (Eq. 7); LTS-Newmark steps only the patch
// at the fine rate and the rest at the coarse rate, producing the same
// waveform for a fraction of the work.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"golts/internal/lts"
	"golts/internal/newmark"
	"golts/internal/sem"
)

func main() {
	// Build the graded bar: coarse element size 1, a patch of 4 elements
	// at size 1/8 in the middle (levels: 1 and 4, p = 1 and 8).
	var xc []float64
	var levels []uint8
	x := 0.0
	xc = append(xc, x)
	for i := 0; i < 40; i++ {
		h, lvl := 1.0, uint8(1)
		if i >= 18 && i < 22 {
			h, lvl = 1.0/8, 4
		}
		x += h
		xc = append(xc, x)
		levels = append(levels, lvl)
	}
	c := make([]float64, len(levels))
	rho := make([]float64, len(levels))
	for i := range c {
		c[i], rho[i] = 1, 1
	}
	op, err := sem.NewOp1D(xc, c, rho, 4, sem.FreeBC, sem.FreeBC)
	if err != nil {
		log.Fatal(err)
	}

	// Coarse step at the coarse elements' CFL limit; the global scheme is
	// forced to Δt/8 by the refined patch.
	coarseDt := 0.5 * 1.0 / (4 * 4) // CFL * h / (c * deg²)
	scheme, err := lts.New(op, levels, 4, coarseDt, true)
	if err != nil {
		log.Fatal(err)
	}
	global := newmark.New(op, coarseDt/8)

	// A Gaussian pulse left of the patch, travelling through it.
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		xi := op.NodeX(i)
		u0[i] = math.Exp(-2 * (xi - 10) * (xi - 10))
	}
	v0 := make([]float64, op.NDof())
	if err := scheme.SetInitial(u0, v0); err != nil {
		log.Fatal(err)
	}
	if err := global.SetInitial(u0, v0); err != nil {
		log.Fatal(err)
	}

	cycles := 300
	scheme.Run(cycles)
	global.Run(cycles * 8)

	// Compare the two waveforms.
	maxDiff, scale := 0.0, 0.0
	for i := range scheme.U {
		scale = math.Max(scale, math.Abs(global.U[i]))
		maxDiff = math.Max(maxDiff, math.Abs(scheme.U[i]-global.U[i]))
	}
	fmt.Printf("simulated %d coarse steps to t = %.2f\n", cycles, scheme.Time())
	fmt.Printf("max |LTS - global| = %.2e (field scale %.2f)\n", maxDiff, scale)
	fmt.Printf("model speedup (Eq. 9):   %.2fx\n", scheme.ModelSpeedup())
	fmt.Printf("work-based speedup:      %.2fx (%.0f%% efficiency)\n",
		scheme.EffectiveSpeedup(), 100*scheme.Efficiency())
	fmt.Printf("element-steps: LTS %d vs global %d\n",
		scheme.ActualElemStepsPerCycle()*int64(cycles),
		scheme.NonLTSElemStepsPerCycle()*int64(cycles))
}
