// Quickstart: the golts/wave facade in one page.
//
// Two simulations of the same acoustic wave on the trench benchmark — one
// with the multi-level LTS-Newmark scheme, one with the global Newmark
// reference — produce the same seismogram, but LTS performs a fraction of
// the element work: only the refined trench substeps at the fine rate.
//
// Run with: go run ./examples/quickstart [-scale 0.005] [-cycles 40]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"golts/wave"
)

func main() {
	scale := flag.Float64("scale", 0.005, "trench mesh scale")
	cycles := flag.Int("cycles", 40, "coarse cycles to simulate")
	flag.Parse()

	// Both runs share mesh, physics and the default source/receiver; they
	// differ only in the time-stepping scheme.
	options := func(scheme wave.Option) []wave.Option {
		return []wave.Option{
			wave.WithMesh("trench", *scale),
			wave.WithPhysics(wave.Acoustic),
			wave.WithCycles(*cycles),
			scheme,
		}
	}
	lts, err := wave.New(options(wave.WithLTS())...)
	if err != nil {
		log.Fatal(err)
	}
	defer lts.Close()
	global, err := wave.New(options(wave.WithGlobalNewmark())...)
	if err != nil {
		log.Fatal(err)
	}
	defer global.Close()

	st := lts.Stats()
	fmt.Printf("trench mesh: %d elements, %d DOF, %d LTS levels\n", st.Elements, st.DOF, st.Levels)

	// A probe reports progress every 10 cycles.
	progress := wave.SnapshotEvery(10, func(f wave.Frame) error {
		fmt.Printf("  cycle %3d  t = %.3f\n", f.Cycle, f.Time)
		return nil
	})
	ctx := context.Background()
	if err := lts.Run(ctx, 0, progress); err != nil {
		log.Fatal(err)
	}
	if err := global.Run(ctx, 0); err != nil {
		log.Fatal(err)
	}

	// Same waveform...
	a, b := lts.Seismograms(), global.Seismograms()
	maxDiff, scaleAmp := 0.0, 0.0
	for i, v := range a.Traces[0].Values {
		scaleAmp = math.Max(scaleAmp, math.Abs(b.Traces[0].Values[i]))
		maxDiff = math.Max(maxDiff, math.Abs(v-b.Traces[0].Values[i]))
	}
	fmt.Printf("simulated %d coarse cycles to t = %.2f\n", *cycles, lts.Time())
	fmt.Printf("max |LTS - global| = %.2e (trace scale %.2e)\n", maxDiff, scaleAmp)

	// ...for a fraction of the work.
	ls, gs := lts.Stats(), global.Stats()
	fmt.Printf("model speedup (Eq. 9):   %.2fx\n", ls.TheoreticalSpeedup)
	fmt.Printf("work-based speedup:      %.2fx (%.0f%% efficiency)\n", ls.EffectiveSpeedup, 100*ls.Efficiency)
	fmt.Printf("element-steps: LTS %d vs global %d\n", ls.ElemApplies, gs.ElemApplies)
}
