// Trench seismology: a 3-D elastic simulation on the trench benchmark
// mesh — the paper's motivating workload — as a client of the golts/wave
// facade. A Ricker point source radiates P and S waves through the
// refined trench; receivers on the surface record vertical-component
// seismograms. The run reports the work saved by the multi-level LTS
// scheme and verifies the seismograms against a global Newmark reference.
//
// Run with: go run ./examples/trench_seismology [-scale 0.002] [-cycles 55]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"golts/wave"
)

func main() {
	scale := flag.Float64("scale", 0.002, "trench mesh scale")
	cycles := flag.Int("cycles", 55, "coarse cycles to simulate")
	flag.Parse()

	// Describe resolves the mesh extent and the coarse step without
	// building operators, so the source and stations can be placed in
	// physical coordinates and the wavelet matched to the run duration.
	plan, err := wave.Describe(wave.WithMesh("trench", *scale))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trench mesh: %d elements, %d levels, model speedup %.2fx\n",
		plan.Elements, plan.Levels, plan.TheoreticalSpeedup)

	// Source: vertical point force inside the trench refinement.
	dur := float64(*cycles) * plan.CoarseDt
	src := wave.Source{
		X: (plan.X0 + plan.X1) / 2, Y: (plan.Y0 + plan.Y1) / 2, Z: 1.0,
		Comp: 2, F0: 8 / dur, T0: dur / 5,
	}
	// Receivers along the surface (z = 0), recording the z component.
	options := func(scheme wave.Option) []wave.Option {
		opts := []wave.Option{
			wave.WithMesh("trench", *scale),
			wave.WithPhysics(wave.Elastic),
			wave.WithCycles(*cycles),
			wave.WithSource(src),
			scheme,
		}
		for i, fx := range []float64{0.46, 0.5, 0.54} {
			opts = append(opts, wave.WithReceiver(wave.Receiver{
				Name: fmt.Sprintf("st%d", i),
				X:    plan.X0 + fx*(plan.X1-plan.X0), Y: (plan.Y0 + plan.Y1) / 2, Z: 0,
				Comp: 2,
			}))
		}
		return opts
	}

	lts, err := wave.New(options(wave.WithLTS())...)
	if err != nil {
		log.Fatal(err)
	}
	defer lts.Close()
	fmt.Printf("elastic operator: %d DOF\n", lts.Stats().DOF)

	ctx := context.Background()
	t0 := time.Now()
	if err := lts.Run(ctx, 0); err != nil {
		log.Fatal(err)
	}
	ltsTime := time.Since(t0)

	// Global Newmark reference at the fine step.
	ref, err := wave.New(options(wave.WithGlobalNewmark())...)
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	t0 = time.Now()
	if err := ref.Run(ctx, 0); err != nil {
		log.Fatal(err)
	}
	refTime := time.Since(t0)

	ls := lts.Stats()
	fmt.Printf("\nLTS run:    %.2fs for %d cycles (%d levels)\n", ltsTime.Seconds(), ls.Cycles, ls.Levels)
	fmt.Printf("global run: %.2fs (measured speedup %.2fx; Eq. 9 model %.2fx; work model %.2fx)\n",
		refTime.Seconds(), refTime.Seconds()/ltsTime.Seconds(),
		ls.TheoreticalSpeedup, ls.EffectiveSpeedup)

	a, b := lts.Seismograms(), ref.Seismograms()
	fmt.Println("\nreceiver  peak-amp      misfit(RMS)")
	for i := range b.Traces {
		var peak, rms, diff float64
		for j, v := range b.Traces[i].Values {
			peak = math.Max(peak, math.Abs(v))
			rms += v * v
			d := a.Traces[i].Values[j] - v
			diff += d * d
		}
		mis := 0.0
		if rms > 0 {
			mis = math.Sqrt(diff / rms)
		}
		fmt.Printf("   %-6s %.3e    %.4f\n", b.Traces[i].Name, peak, mis)
	}
}
