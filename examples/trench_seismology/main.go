// Trench seismology: a 3-D elastic simulation on the trench benchmark
// mesh — the paper's motivating workload. A Ricker point source radiates
// P and S waves through the refined trench; receivers on the surface
// record three-component seismograms. The run reports the work saved by
// the 4-level LTS scheme and verifies the seismograms against a global
// Newmark reference.
//
// Run with: go run ./examples/trench_seismology
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/sem"
)

func main() {
	// A small trench so the reference run stays fast; scale up for real
	// experiments.
	m := mesh.Trench(0.002)
	lv := mesh.AssignLevels(m, 0.4/16, 0) // degree-4 GLL spacing factor
	fmt.Printf("trench mesh: %d elements, %d levels, model speedup %.2fx\n",
		m.NumElements(), lv.NumLevels, lv.TheoreticalSpeedup())

	op, err := sem.NewElastic3D(m, 4, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elastic operator: %d nodes, %d DOF\n", op.NumNodes(), op.NDof())

	// Source: vertical point force inside the trench refinement.
	x0, x1, y0, y1, _, _ := m.Extent()
	srcNode := nearest(op, (x0+x1)/2, (y0+y1)/2, 1.0)
	dur := 40 * lv.CoarseDt
	wavelet := sem.Ricker{F0: 6 / dur, T0: dur / 5}
	src := sem.Source{Dof: int(srcNode)*3 + 2, W: wavelet} // z component

	// Receivers along the surface (z = 0), recording the z component.
	var rcvs []*sem.Receiver
	for _, fx := range []float64{0.46, 0.5, 0.54} {
		n := nearest(op, x0+fx*(x1-x0), (y0+y1)/2, 0)
		rcvs = append(rcvs, &sem.Receiver{Dof: int(n)*3 + 2})
	}

	cycles := 55
	s, err := lts.FromMeshLevels(op, lv, true)
	if err != nil {
		log.Fatal(err)
	}
	s.SetSources([]sem.Source{src})
	t0 := time.Now()
	for i := 0; i < cycles; i++ {
		s.Step()
		for _, r := range rcvs {
			r.Record(s.Time(), s.U)
		}
	}
	ltsTime := time.Since(t0)

	// Global Newmark reference at the fine step.
	g := newmark.New(op, lv.CoarseDt/float64(lv.PMax()))
	g.Sources = []sem.Source{src}
	ref := make([]*sem.Receiver, len(rcvs))
	for i, r := range rcvs {
		ref[i] = &sem.Receiver{Dof: r.Dof}
	}
	t0 = time.Now()
	for i := 0; i < cycles; i++ {
		g.Run(lv.PMax())
		for _, r := range ref {
			r.Record(g.Time(), g.U)
		}
	}
	refTime := time.Since(t0)

	fmt.Printf("\nLTS run:    %.2fs for %d cycles (%d levels)\n", ltsTime.Seconds(), cycles, lv.NumLevels)
	fmt.Printf("global run: %.2fs (measured speedup %.2fx; Eq. 9 model %.2fx; work model %.2fx)\n",
		refTime.Seconds(), refTime.Seconds()/ltsTime.Seconds(),
		s.ModelSpeedup(), s.EffectiveSpeedup())
	fmt.Println("\nreceiver  peak-amp      misfit(RMS)")
	for i, r := range rcvs {
		var peak, rms, diff float64
		for j, v := range ref[i].Values {
			peak = math.Max(peak, math.Abs(v))
			rms += v * v
			d := r.Values[j] - v
			diff += d * d
		}
		mis := 0.0
		if rms > 0 {
			mis = math.Sqrt(diff / rms)
		}
		fmt.Printf("   %d      %.3e    %.4f\n", i, peak, mis)
	}
}

// nearest does a brute-force nearest-node search (fine for examples).
func nearest(op *sem.Elastic3D, x, y, z float64) int32 {
	best, bd := int32(0), math.Inf(1)
	for n := 0; n < op.NumNodes(); n++ {
		nx, ny, nz := op.NodeCoords(int32(n))
		d := (nx-x)*(nx-x) + (ny-y)*(ny-y) + (nz-z)*(nz-z)
		if d < bd {
			best, bd = int32(n), d
		}
	}
	return best
}
