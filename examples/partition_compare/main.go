// Partition compare: reproduce the paper's Fig. 6/7/8 story on a single
// mesh — the single-constraint baseline balances total work but not the
// p-levels; the LTS-aware strategies balance every level; the hypergraph
// model optimises true MPI volume.
//
// The example also prints an ASCII slice of the trench partition (the
// paper's Fig. 6 visualisation, one character per element column).
//
// Run with: go run ./examples/partition_compare
package main

import (
	"fmt"
	"log"

	"golts/internal/mesh"
	"golts/internal/partition"
)

func main() {
	m := mesh.Trench(0.05)
	lv := mesh.AssignLevels(m, 0.4, 0)
	const k = 4
	fmt.Printf("trench mesh: %d elements, %d levels, speedup %.2fx, K = %d\n\n",
		m.NumElements(), lv.NumLevels, lv.TheoreticalSpeedup(), k)

	for _, method := range partition.Methods {
		res, err := partition.PartitionMesh(m, lv, partition.Options{
			K: k, Method: method, Imbalance: 0.03, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		mt := partition.Evaluate(m, lv, res.Part, k)
		fmt.Printf("%-9s total imbalance %5.1f%%  per-level", method, mt.TotalImbalance)
		for _, v := range mt.PerLevelImbalance {
			fmt.Printf(" %5.1f%%", v)
		}
		fmt.Printf("  cut %.2e  volume %.2e\n", float64(mt.GraphCut), float64(mt.CommVolume))
		if method == partition.Scotch || method == partition.ScotchP {
			fmt.Println(asciiSlice(m, lv, res.Part))
		}
	}
	fmt.Println("legend: one character per element at the mid-depth slice; 0-3 = owning part,")
	fmt.Println("        uppercase = refined element (p > 1). The baseline concentrates the")
	fmt.Println("        refined band in few parts; SCOTCH-P splits every level across all parts.")
}

// asciiSlice renders the z-middle slice of the partition, marking refined
// elements with uppercase letters.
func asciiSlice(m *mesh.Mesh, lv *mesh.Levels, part []int32) string {
	out := ""
	kz := m.NZ / 2
	stepY := (m.NY + 15) / 16 // at most ~16 rows
	for j := 0; j < m.NY; j += stepY {
		row := "  "
		for i := 0; i < m.NX; i++ {
			e := m.EIndex(i, j, kz)
			ch := byte('0' + part[e]%10)
			if lv.PFor(e) > 1 {
				ch = byte('A' + part[e]%26)
			}
			row += string(ch)
		}
		out += row + "\n"
	}
	return out
}
