// Partition compare: reproduce the paper's Fig. 6/7/8 story on a single
// mesh through the golts/wave facade — the single-constraint baseline
// balances total work but not the p-levels; the LTS-aware strategies
// balance every level; the hypergraph model optimises true MPI volume.
//
// The example also prints an ASCII slice of the trench partition (the
// paper's Fig. 6 visualisation, one character per element column).
//
// Run with: go run ./examples/partition_compare [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	"golts/internal/mesh"
	"golts/wave"
)

func main() {
	scale := flag.Float64("scale", 0.05, "trench mesh scale")
	flag.Parse()

	const k = 4
	plan, err := wave.Describe(wave.WithMesh("trench", *scale))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trench mesh: %d elements, %d levels, speedup %.2fx, K = %d\n\n",
		plan.Elements, plan.Levels, plan.TheoreticalSpeedup, k)

	for _, method := range wave.Partitioners {
		rep, err := wave.PartitionMesh("trench", *scale, wave.PartitionOptions{
			Parts: k, Method: method, Imbalance: 0.03, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s total imbalance %5.1f%%  per-level", method, rep.TotalImbalance)
		for _, v := range rep.PerLevelImbalance {
			fmt.Printf(" %5.1f%%", v)
		}
		fmt.Printf("  cut %.2e  volume %.2e\n", float64(rep.GraphCut), float64(rep.CommVolume))
		if method == wave.Scotch || method == wave.ScotchP {
			fmt.Println(asciiSlice(*scale, rep.Part))
		}
	}
	fmt.Println("legend: one character per element at the mid-depth slice; 0-3 = owning part,")
	fmt.Println("        uppercase = refined element (p > 1). The baseline concentrates the")
	fmt.Println("        refined band in few parts; SCOTCH-P splits every level across all parts.")
}

// asciiSlice renders the z-middle slice of the partition, marking refined
// elements with uppercase letters. The rendering needs element-grid
// geometry the facade does not expose, so it rebuilds the (deterministic)
// mesh and level assignment that wave.PartitionMesh used (defaults:
// degree 4, CFL 0.4, normalised as CFL/degree²).
func asciiSlice(scale float64, part []int32) string {
	m := mesh.Trench(scale)
	lv := mesh.AssignLevels(m, 0.4/16, 0)
	out := ""
	kz := m.NZ / 2
	stepY := (m.NY + 15) / 16 // at most ~16 rows
	for j := 0; j < m.NY; j += stepY {
		row := "  "
		for i := 0; i < m.NX; i++ {
			e := m.EIndex(i, j, kz)
			ch := byte('0' + part[e]%10)
			if lv.PFor(e) > 1 {
				ch = byte('A' + part[e]%26)
			}
			row += string(ch)
		}
		out += row + "\n"
	}
	return out
}
